#include <algorithm>
#include <cmath>
#include <limits>

#include "lint/check.hpp"
#include "sta/sta.hpp"
#include "sta/timing_graph.hpp"
#include "trace/trace.hpp"
#include "util/numeric.hpp"

namespace sscl::sta {

using digital::Gate;
using digital::Netlist;
using digital::SignalId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// x mod m in [0, m), correct for negative x.
double pmod(double x, double m) {
  const double r = std::fmod(x, m);
  return r < 0 ? r + m : r;
}

/// Scratch state of one analysis pass, kept so the fmax search reuses
/// allocations across period probes.
struct Solver {
  const Netlist* nl;
  const TimingGraph* tg;
  const StaOptions* options;
  std::vector<double> arrival;   // per signal: settled (latest) arrival
  std::vector<double> earliest;  // per signal: earliest possible transition
  std::vector<double> window;    // per signal: launch-window open (classic)
  std::vector<int> crit_in;      // per gate: argmax input index
  std::vector<double> open_g, a_in_g, slack_g, required_g;
  std::vector<char> open_limited;

  void solve(double period);
  CriticalPath trace(int capture, bool stage_local) const;
};

void Solver::solve(double period) {
  const auto& gates = nl->gates();
  const int n = static_cast<int>(gates.size());
  const int ns = nl->signal_count();
  const double half = period / 2;
  const double tol = 1e-9 * period;
  const bool classic = options->mode == StaMode::kClassic;
  const double t_in =
      options->input_arrival + options->input_arrival_frac * period;

  arrival.assign(ns, t_in);
  earliest.assign(ns, t_in);
  window.assign(ns, t_in);
  crit_in.assign(n, -1);
  open_g.assign(n, 0.0);
  a_in_g.assign(n, 0.0);
  slack_g.assign(n, kInf);
  required_g.assign(n, kInf);
  open_limited.assign(n, 0);

  // On a DAG one topological pass is exact. Latch feedback needs the
  // Bellman-Ford-style repetition: back edges read one-period-old
  // arrivals, which stabilize after at most one pass per latch rank.
  const int passes =
      tg->has_feedback
          ? std::min(64, static_cast<int>(tg->latches.size()) + 2)
          : 1;
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    for (const int gi : tg->order) {
      const Gate& g = gates[gi];
      const GateTiming& t = tg->gate[gi];
      double a_in = -kInf;
      double e_in = kInf;
      double w_in = -kInf;
      int ci = -1;
      for (int i = 0; i < digital::input_count(g.kind); ++i) {
        const SignalId s = g.in[i].sig;
        const int drv = nl->driver_of(s);
        // A driver later in evaluation order is a feedback edge: its
        // data was launched in the previous period.
        const bool back = drv >= 0 && tg->order_pos[drv] > tg->order_pos[gi];
        const double ai = arrival[s] - (back ? period : 0.0);
        if (ai > a_in) {
          a_in = ai;
          ci = i;
        }
        e_in = std::min(e_in, earliest[s] - (back ? period : 0.0));
        w_in = std::max(w_in, window[s] - (back ? period : 0.0));
      }
      crit_in[gi] = ci;
      double a_out;
      double e_out;
      if (!digital::is_latching(g.kind)) {
        a_out = a_in + t.delay;
        e_out = e_in + t.delay;
        window[g.out] = w_in;
      } else if (classic) {
        // First transparency window that can still capture this token:
        // open = phase offset + m*T with the smallest m whose close lies
        // after the launch of the incoming data. Same-phase back-to-back
        // latches share a window (the shoot-through race lint flags).
        double open = g.clock_phase ? 0.0 : half;
        while (open + half <= w_in + tol) open += period;
        open_g[gi] = open;
        a_in_g[gi] = a_in;
        required_g[gi] = open + half;
        slack_g[gi] = open + half - (a_in + t.delay);
        open_limited[gi] = a_in <= open;
        a_out = std::max(a_in, open) + t.delay;
        e_out = a_out;
        window[g.out] = open;
      } else {
        // EventSim capture model. Commit opportunities: the data event
        // maturing at a_in + delay (succeeds when the latch is
        // transparent at that instant) and the clock-edge re-evaluation,
        // whose maturity lands in a transparency window at one fixed
        // position per period. A commit reads its inputs at maturity, so
        // it is clean only between the settle of this token and the
        // first possible transition of the next: [a_in, e_in + T).
        const double o_p = g.clock_phase ? 0.0 : half;
        const double corruption = e_in + period;
        const double cand1 = a_in + t.delay;
        const bool cand1_transparent = pmod(cand1 - o_p, period) < half;
        // Rise- and fall-edge re-evals mature half a period apart, so
        // exactly one of the two positions is transparent.
        double pos = pmod(t.delay, period);  // rise-edge maturity position
        const bool rise_transparent = g.clock_phase ? pos < half : pos >= half;
        if (!rise_transparent) pos = pmod(half + t.delay, period);
        const double cand2 = a_in + pmod(pos - a_in, period);
        const bool valid1 = cand1_transparent && cand1 < corruption - tol;
        const bool valid2 = cand2 < corruption - tol;
        double chosen;
        if (valid1 || valid2) {
          chosen = std::min(valid1 ? cand1 : kInf, valid2 ? cand2 : kInf);
        } else {
          chosen = cand1_transparent ? std::min(cand1, cand2) : cand2;
        }
        a_in_g[gi] = a_in;
        required_g[gi] = corruption;
        slack_g[gi] = corruption - chosen;
        open_limited[gi] = chosen != cand1 || !cand1_transparent;
        a_out = chosen;
        // Earliest output transition: the first input-change commit whose
        // maturity lands in a transparency window replays the input's
        // settling interval from there on; a clock commit positioned
        // inside the settling interval writes mid-transition garbage
        // every period. With neither, the output transitions once at the
        // chosen commit.
        const double m_lo = e_in + t.delay;
        const double m_hi = a_in + t.delay;
        double e_first = kInf;
        const double x = pmod(m_lo - o_p, period);
        if (x < half) {
          e_first = m_lo;
        } else if (m_lo + (period - x) <= m_hi) {
          e_first = m_lo + (period - x);
        }
        const double frac = pmod(pos - e_in, period);
        if (frac < a_in - e_in) e_first = std::min(e_first, e_in + frac);
        e_out = std::min(e_first, chosen);
        open_g[gi] = chosen - pmod(chosen - o_p, period);
        window[g.out] = open_g[gi];
      }
      if (a_out > arrival[g.out] + tol || pass == 0) {
        changed = changed || std::abs(a_out - arrival[g.out]) > tol;
        arrival[g.out] = a_out;
      }
      if (pass == 0 || std::abs(e_out - earliest[g.out]) > tol) {
        changed = changed || std::abs(e_out - earliest[g.out]) > tol;
        earliest[g.out] = e_out;
      }
    }
    if (!changed && pass > 0) break;
  }
}

CriticalPath Solver::trace(int capture, bool stage_local) const {
  const auto& gates = nl->gates();
  CriticalPath path;
  std::vector<char> visited(gates.size(), 0);
  std::vector<PathStep> rsteps;
  int launch_boundary = -1;  // index into rsteps of a launch-latch step
  int cur = capture;
  bool first = true;
  while (cur >= 0 && !visited[cur]) {
    visited[cur] = 1;
    const Gate& g = gates[cur];
    const GateTiming& t = tg->gate[cur];
    PathStep step;
    step.gate = cur;
    step.name = g.name;
    step.fanout = t.fanout;
    step.load_cap = t.load_cap;
    step.delay = t.delay;
    step.arrival = first ? a_in_g[cur] + t.delay : arrival[g.out];
    const bool is_launch =
        !first && digital::is_latching(g.kind) &&
        (stage_local || open_limited[cur]);
    if (is_launch) launch_boundary = static_cast<int>(rsteps.size());
    rsteps.push_back(step);
    if (is_launch) break;
    const int ci = crit_in[cur];
    if (ci < 0) break;
    cur = nl->driver_of(g.in[ci].sig);
    first = false;
  }
  std::reverse(rsteps.begin(), rsteps.end());
  if (launch_boundary >= 0) {
    launch_boundary = static_cast<int>(rsteps.size()) - 1 - launch_boundary;
  }
  path.steps = std::move(rsteps);
  for (int i = 0; i < static_cast<int>(path.steps.size()); ++i) {
    if (i != launch_boundary) path.path_cap += path.steps[i].load_cap;
  }
  path.arrival = a_in_g[capture];
  path.required = required_g[capture];
  path.slack = slack_g[capture];
  return path;
}

TimingReport analyze_graph(const Netlist& nl, const TimingGraph& tg,
                           const stscl::SclModel& model, double iss,
                           double period, const StaOptions& options,
                           Solver& solver) {
  solver.nl = &nl;
  solver.tg = &tg;
  solver.options = &options;
  solver.solve(period);

  const auto& gates = nl.gates();
  const double tol = 1e-9 * period;
  const double fop = 1.0 / period;

  TimingReport report;
  report.period = period;
  report.iss = iss;
  report.max_depth = tg.max_depth;
  report.max_rank = tg.max_rank;
  report.has_feedback = tg.has_feedback;
  report.worst_slack = kInf;

  int worst_gate = -1;
  std::vector<int> stage_worst(tg.max_rank + 1, -1);
  for (const int gi : tg.latches) {
    const Gate& g = gates[gi];
    const GateTiming& t = tg.gate[gi];
    LatchTiming lt;
    lt.gate = gi;
    lt.name = g.name;
    lt.rank = t.rank;
    lt.phase = g.clock_phase;
    lt.depth = t.depth;
    lt.open = solver.open_g[gi];
    lt.close = solver.required_g[gi];
    lt.arrival = solver.a_in_g[gi];
    lt.slack = solver.slack_g[gi];
    report.latches.push_back(lt);
    if (lt.slack < report.worst_slack) {
      report.worst_slack = lt.slack;
      worst_gate = gi;
    }
    int& sw = stage_worst[t.rank];
    if (sw < 0 || solver.slack_g[gi] < solver.slack_g[sw]) sw = gi;
  }
  report.feasible = report.worst_slack >= -tol;
  if (report.latches.empty()) {
    // Purely combinational block: no capture constraint, always
    // feasible; report the deepest cone as the critical path.
    report.worst_slack = 0.0;
    report.feasible = true;
  }

  for (int rank = 1; rank <= tg.max_rank; ++rank) {
    if (stage_worst[rank] < 0) continue;
    const int gi = stage_worst[rank];
    StageTiming st;
    st.rank = rank;
    st.phase = gates[gi].clock_phase;
    st.slack = solver.slack_g[gi];
    st.worst_name = gates[gi].name;
    for (const int li : tg.latches) {
      if (tg.gate[li].rank != rank) continue;
      ++st.latches;
      st.depth = std::max(st.depth, tg.gate[li].depth);
    }
    const CriticalPath sp = solver.trace(gi, /*stage_local=*/true);
    st.path_cap = sp.path_cap;
    st.power_eq1 = model.path_power_for_cap(sp.path_cap, fop, options.vdd);
    report.stages.push_back(st);
    report.dynamic_power += st.power_eq1;
  }
  report.static_power = gates.size() * iss * options.vdd;

  if (worst_gate >= 0) {
    report.critical = solver.trace(worst_gate, /*stage_local=*/false);
    report.critical.power_eq1 =
        model.path_power_for_cap(report.critical.path_cap, fop, options.vdd);
  }
  return report;
}

}  // namespace

double TimingReport::worst_slack_of_phase(bool phase) const {
  double worst = kInf;
  for (const LatchTiming& lt : latches) {
    if (lt.phase == phase) worst = std::min(worst, lt.slack);
  }
  return worst;
}

TimingReport analyze(const Netlist& netlist, const stscl::SclModel& model,
                     double iss, double period, const StaOptions& options) {
  trace::Span span("sta.analyze", "analysis");
  if (period <= 0) throw StaError("sta: period must be positive");
  if (options.lint) lint::enforce_netlist(netlist);
  const TimingGraph tg = build_timing_graph(netlist, model, iss, options);
  Solver solver;
  TimingReport report =
      analyze_graph(netlist, tg, model, iss, period, options, solver);
  trace::set_counter("sta.stages", static_cast<long long>(report.stages.size()));
  trace::set_counter("sta.latches", static_cast<long long>(report.latches.size()));
  return report;
}

double sta_fmax(const Netlist& netlist, const stscl::SclModel& model,
                double iss, const StaOptions& options) {
  trace::Span span("sta.fmax", "analysis");
  if (options.lint) lint::enforce_netlist(netlist);
  const TimingGraph tg = build_timing_graph(netlist, model, iss, options);
  if (tg.latches.empty()) {
    throw StaError("sta_fmax: no latches; fmax is unconstrained");
  }
  Solver solver;
  static trace::Counter probes("sta.fmax_probes");
  double best = kInf;  // smallest period actually proven feasible
  auto feasible = [&](double period) {
    trace::Span probe("sta.probe", "analysis");
    probes.add();
    const bool ok =
        analyze_graph(netlist, tg, model, iss, period, options, solver)
            .feasible;
    if (ok) best = std::min(best, period);
    return ok;
  };

  const double td = model.delay(iss);
  double hi = 4.0 * td * std::max(1, tg.max_depth);
  int guard = 0;
  while (!feasible(hi)) {
    hi *= 2.0;
    if (++guard > 40) throw StaError("sta_fmax: no feasible period");
  }
  double lo = hi / 64.0;
  while (feasible(lo)) {
    lo *= 0.5;
    if (++guard > 120) break;
  }
  // Same resolution as measure_encoder_fmax's search, so the two agree
  // to the search tolerance when the models line up. Return the fastest
  // period the search *verified*, so analyze(1 / sta_fmax(...)) is
  // always feasible — in sim-capture mode feasibility need not be
  // monotone and the raw boundary can sit on the failing side.
  util::binary_search_boundary(
      [&](double period) { return !feasible(period); }, lo, hi, 1e-3);
  return 1.0 / best;
}

}  // namespace sscl::sta
