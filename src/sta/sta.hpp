#pragma once

/// \file sta.hpp
/// Static timing and power analyzer for STSCL gate netlists. Where
/// digital::measure_encoder_fmax finds the maximum clock by binary-
/// searching an event-driven simulation, sta computes the same answer
/// from the netlist graph and the paper's closed-form delay law
/// (td = ln2*Vsw*CL/Iss) — orders of magnitude faster, and with
/// per-path visibility the simulator cannot give.
///
/// The clock model matches EventSim: one global clock, rising edge at
/// t = 0, high during [0, T/2), low during [T/2, T). A latch of phase p
/// is transparent while clock == p; data must be evaluated (arrival +
/// gate delay) before its window closes, and a latch opening re-
/// evaluates its input cone, so data arriving early departs at the
/// window open. Arrivals later than the open borrow transparency time —
/// the paper's two-phase pipelining (Section III-B) analyzed the way
/// production latch-based STA does it.
///
/// Power: paper eq. (1), P_path = 2 ln2 Vsw CL NL fop VDD, evaluated
/// with the fanout-aware per-gate CL summed along each reported path.

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "digital/netlist.hpp"
#include "stscl/scl_params.hpp"

namespace sscl::sta {

/// Thrown when a netlist cannot be timed (combinational loop, invalid
/// gate wiring, latches without a clock, multi-driven signals).
class StaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How latch capture is constrained.
enum class StaMode {
  /// Textbook latch-based STA: every latch must capture its token in an
  /// assigned transparency window; data arriving after the window close
  /// is a violation. Conservative and monotone in the period — the safe
  /// clocking constraint a designer signs off on.
  kClassic,
  /// Model of EventSim's inertial-delay latch: a capture evaluates its
  /// inputs at event *maturity* and retries at every clock edge, so a
  /// token may ride through an opaque latch and commit one window later
  /// (wave pipelining). Throughput is then limited by input *stability*
  /// — the commit must not read a signal mid-transition — which is what
  /// actually bounds measure_encoder_fmax. Not monotone in the period
  /// in pathological cases; use for simulator cross-validation.
  kSimCapture,
};

struct StaOptions {
  /// Run the lint DRC rules before analysis (throws lint::LintError).
  bool lint = true;
  /// Latch capture model (see StaMode).
  StaMode mode = StaMode::kClassic;
  /// When primary-input data becomes valid, measured from the rising
  /// clock edge [s].
  double input_arrival = 0.0;
  /// Additional input arrival as a fraction of the clock period (the
  /// encoder testbench applies inputs at t_rise + 0.05 T).
  double input_arrival_frac = 0.0;
  /// Supply voltage for the eq.-(1) power budgets [V].
  double vdd = 1.0;
  /// Per-kind delay multipliers (transistor-level correction factors,
  /// mirroring EventSim::set_kind_factor).
  std::array<double, digital::kGateKindCount> kind_factor;

  StaOptions() { kind_factor.fill(1.0); }
};

/// One gate on a reported path.
struct PathStep {
  int gate = -1;          ///< gate index in the netlist
  std::string name;       ///< gate name
  int fanout = 0;         ///< driven gate inputs
  double load_cap = 0.0;  ///< fanout-aware CL [F]
  double delay = 0.0;     ///< gate delay at the analysis bias [s]
  double arrival = 0.0;   ///< output arrival time [s]
};

/// A launch-to-capture critical path, traced back through transparent
/// (borrowing) latches until an open-edge-limited launch point.
struct CriticalPath {
  std::vector<PathStep> steps;  ///< launch first, capture latch last
  double arrival = 0.0;         ///< data arrival at the capture input [s]
  double required = 0.0;        ///< capture window close [s]
  double slack = 0.0;           ///< required - (arrival + capture delay)
  double path_cap = 0.0;        ///< sum of load caps: eq. (1)'s CL*NL [F]
  double power_eq1 = 0.0;       ///< eq. (1) at fop = 1/period [W]
};

/// Timing of one latch (pipeline register) at the analysis period.
struct LatchTiming {
  int gate = -1;
  std::string name;
  int rank = 0;           ///< pipeline stage index, 1-based
  bool phase = true;      ///< transparent while clock == phase
  int depth = 0;          ///< logic depth NL of its input cone (incl. itself)
  double open = 0.0;      ///< open of the transparency window used [s]
  double close = 0.0;     ///< required time: window close (classic) or
                          ///< the instant the next token starts corrupting
                          ///< the input (sim-capture) [s]
  double arrival = 0.0;   ///< settled data arrival at the latch input [s]
  double slack = 0.0;     ///< required - capture commit time
};

/// Aggregate timing of one pipeline stage (all latches of one rank).
struct StageTiming {
  int rank = 0;
  bool phase = true;       ///< phase of the stage's worst latch
  int latches = 0;
  int depth = 0;           ///< max logic depth NL in the stage
  double slack = 0.0;      ///< worst slack in the stage
  std::string worst_name;  ///< latch with the worst slack
  double path_cap = 0.0;   ///< caps along the stage's critical path [F]
  double power_eq1 = 0.0;  ///< eq. (1) stage budget at fop = 1/period [W]
};

struct TimingReport {
  double period = 0.0;  ///< analysis clock period [s]
  double iss = 0.0;     ///< analysis tail current [A]
  bool feasible = false;
  double worst_slack = 0.0;
  int max_depth = 0;        ///< max logic depth NL over all stages
  int max_rank = 0;         ///< pipeline depth in latch ranks
  bool has_feedback = false;  ///< latch feedback loops present
  std::vector<LatchTiming> latches;
  std::vector<StageTiming> stages;
  CriticalPath critical;
  double static_power = 0.0;    ///< N_gates * Iss * VDD [W]
  double dynamic_power = 0.0;   ///< sum of stage eq.-(1) budgets [W]

  /// Worst slack over latches of one clock phase (+inf when none).
  double worst_slack_of_phase(bool phase) const;

  /// Human-readable multi-section report.
  std::string text() const;
  /// Stage table: rank,phase,latches,depth,slack,path_cap,power_eq1.
  std::string stage_csv() const;
  /// Critical path table: gate,name,fanout,load_cap,delay,arrival.
  std::string path_csv() const;
};

/// Analyze the netlist at one (iss, period) operating point.
TimingReport analyze(const digital::Netlist& netlist,
                     const stscl::SclModel& model, double iss, double period,
                     const StaOptions& options = {});

/// Maximum clock frequency: binary search on the analytic feasibility
/// boundary (no event simulation anywhere).
double sta_fmax(const digital::Netlist& netlist, const stscl::SclModel& model,
                double iss, const StaOptions& options = {});

}  // namespace sscl::sta
