#include "sta/timing_graph.hpp"

#include <algorithm>
#include <deque>
#include <string>

namespace sscl::sta {

using digital::Gate;
using digital::GateKind;
using digital::Netlist;
using digital::SignalId;

namespace {

void validate(const Netlist& nl) {
  const int ns = nl.signal_count();
  const auto& gates = nl.gates();
  bool any_latch = false;
  for (int gi = 0; gi < static_cast<int>(gates.size()); ++gi) {
    const Gate& g = gates[gi];
    if (g.out < 0 || g.out >= ns) {
      throw StaError("sta: gate '" + g.name + "' has an invalid output");
    }
    if (nl.driver_of(g.out) != gi) {
      throw StaError("sta: signal '" + nl.signal_name(g.out) +
                     "' is multi-driven");
    }
    for (int i = 0; i < digital::input_count(g.kind); ++i) {
      if (g.in[i].sig < 0 || g.in[i].sig >= ns) {
        throw StaError("sta: gate '" + g.name + "' input " +
                       std::to_string(i) + " is unconnected");
      }
    }
    any_latch = any_latch || digital::is_latching(g.kind);
  }
  if (any_latch && nl.clock_signal() == digital::kNoSignal) {
    throw StaError("sta: latching gates but no clock signal");
  }
}

}  // namespace

Levelization levelize(const Netlist& nl) {
  const auto& gates = nl.gates();
  const int n = static_cast<int>(gates.size());
  const int ns = nl.signal_count();

  Levelization lev;

  // Kahn topological sort over driver edges. Invalid refs contribute no
  // edge (tolerance for netlists the DRC will reject anyway). Leftover
  // gates mean a cycle; legal only when it runs through a latch.
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<int>> consumers(ns);
  for (int gi = 0; gi < n; ++gi) {
    const Gate& g = gates[gi];
    for (int i = 0; i < digital::input_count(g.kind); ++i) {
      const SignalId s = g.in[i].sig;
      if (s < 0 || s >= ns) continue;
      const int driver = nl.driver_of(s);
      if (driver < 0 || driver >= n) continue;
      ++indeg[gi];
      consumers[s].push_back(gi);
    }
  }
  std::deque<int> ready;
  for (int gi = 0; gi < n; ++gi) {
    if (indeg[gi] == 0) ready.push_back(gi);
  }
  lev.order.reserve(n);
  std::vector<char> placed(n, 0);
  while (!ready.empty()) {
    const int gi = ready.front();
    ready.pop_front();
    lev.order.push_back(gi);
    placed[gi] = 1;
    const SignalId out = gates[gi].out;
    if (out < 0 || out >= ns) continue;
    for (int c : consumers[out]) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  if (static_cast<int>(lev.order.size()) != n) {
    // Cycle. A latch on the cycle makes it sequential feedback: append
    // the leftovers in construction order and let the analyzer iterate.
    bool latch_on_cycle = false;
    for (int gi = 0; gi < n; ++gi) {
      if (!placed[gi] && digital::is_latching(gates[gi].kind)) {
        latch_on_cycle = true;
        break;
      }
    }
    lev.has_feedback = latch_on_cycle;
    lev.has_comb_cycle = !latch_on_cycle;
    for (int gi = 0; gi < n; ++gi) {
      if (!placed[gi]) lev.order.push_back(gi);
    }
  }
  lev.order_pos.assign(n, 0);
  for (int p = 0; p < n; ++p) lev.order_pos[lev.order[p]] = p;
  for (const int gi : lev.order) {
    if (digital::is_latching(gates[gi].kind)) lev.latches.push_back(gi);
  }
  return lev;
}

TimingGraph build_timing_graph(const Netlist& nl, const stscl::SclModel& model,
                               double iss, const StaOptions& options) {
  validate(nl);
  const auto& gates = nl.gates();
  const int n = static_cast<int>(gates.size());
  const int ns = nl.signal_count();

  const Levelization lev = levelize(nl);
  if (lev.has_comb_cycle) {
    throw StaError("sta: combinational loop (run lint for the cycle)");
  }

  TimingGraph tg;
  tg.gate.resize(n);
  tg.rank_sig.assign(ns, 0);
  tg.depth_sig.assign(ns, 0);
  tg.order = lev.order;
  tg.order_pos = lev.order_pos;
  tg.has_feedback = lev.has_feedback;

  // Per-gate load and delay from the shared fanout-aware model.
  for (int gi = 0; gi < n; ++gi) {
    const Gate& g = gates[gi];
    GateTiming& t = tg.gate[gi];
    t.fanout = nl.fanout_of(g.out);
    t.load_cap = model.load_cap(t.fanout);
    t.delay = model.delay_for_load(iss, t.load_cap) *
              options.kind_factor[static_cast<int>(g.kind)];
  }

  // Levelize: depth resets at latch outputs, rank increments through
  // latches. One pass suffices on a DAG; with feedback the first pass
  // fixes ranks (back edges would otherwise increment forever).
  for (int p = 0; p < n; ++p) {
    const int gi = tg.order[p];
    const Gate& g = gates[gi];
    GateTiming& t = tg.gate[gi];
    int d_in = 0;
    int r_in = 0;
    for (int i = 0; i < digital::input_count(g.kind); ++i) {
      const SignalId s = g.in[i].sig;
      d_in = std::max(d_in, tg.depth_sig[s]);
      r_in = std::max(r_in, tg.rank_sig[s]);
    }
    t.depth = d_in + 1;
    if (digital::is_latching(g.kind)) {
      t.rank = r_in + 1;
      tg.depth_sig[g.out] = 0;
      tg.rank_sig[g.out] = t.rank;
      tg.latches.push_back(gi);
    } else {
      t.rank = r_in + 1;  // stage this gate's evaluation belongs to
      tg.depth_sig[g.out] = t.depth;
      tg.rank_sig[g.out] = r_in;
    }
    tg.max_rank = std::max(tg.max_rank, digital::is_latching(g.kind)
                                            ? t.rank
                                            : 0);
    tg.max_depth = std::max(tg.max_depth, t.depth);
  }
  return tg;
}

}  // namespace sscl::sta
