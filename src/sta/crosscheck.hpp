#pragma once

/// \file crosscheck.hpp
/// Cross-validation of the static analyzer against the event-driven
/// simulator: both measure the encoder's fmax at one bias point; the
/// analytic answer must track the simulated one (issue acceptance:
/// within 10% across the 1 nA – 100 nA subthreshold range) while being
/// orders of magnitude faster.

#include "digital/encoder.hpp"
#include "sta/sta.hpp"

namespace sscl::sta {

struct FmaxCrossCheck {
  double iss = 0.0;          ///< tail current of the comparison [A]
  double f_sta = 0.0;        ///< analytic fmax [Hz]
  double f_sim = 0.0;        ///< event-simulated fmax [Hz]
  double ratio = 0.0;        ///< f_sta / f_sim
  double sta_seconds = 0.0;  ///< wall time of the analytic search
  double sim_seconds = 0.0;  ///< wall time of the simulated search
  double speedup = 0.0;      ///< sim_seconds / sta_seconds

  /// |ratio - 1| <= tolerance.
  bool agrees(double tolerance = 0.10) const;
};

/// Run both fmax measurements on an already-built encoder.
FmaxCrossCheck crosscheck_encoder_fmax(const digital::Netlist& netlist,
                                       const digital::EncoderIo& io,
                                       const stscl::SclModel& model,
                                       double iss,
                                       const StaOptions& options = {});

}  // namespace sscl::sta
