#pragma once

/// \file timing_graph.hpp
/// Levelized view of a digital::Netlist for static timing: a validated
/// topological evaluation order, per-gate fanout-aware loads and delays,
/// per-signal logic depth and pipeline rank. Latch feedback loops (state
/// machines) are legal; the edges that close them are evaluated with a
/// one-period relaxation by the analyzer. Combinational loops are not
/// and throw StaError, as do structurally broken netlists — the lint
/// comb-loop / multi-driven rules name the same defects with better
/// messages, which is why analyze() runs the DRC first by default.

#include <vector>

#include "sta/sta.hpp"

namespace sscl::sta {

struct GateTiming {
  int fanout = 0;         ///< driven gate inputs at the output
  double load_cap = 0.0;  ///< fanout-aware CL [F]
  double delay = 0.0;     ///< delay at the analysis iss, kind factor in [s]
  int rank = 0;           ///< stage this gate evaluates in (1-based)
  int depth = 0;          ///< comb gates from the stage boundary, incl. self
};

struct TimingGraph {
  std::vector<int> order;      ///< topological evaluation order
  std::vector<int> order_pos;  ///< gate -> position in order
  std::vector<GateTiming> gate;
  std::vector<int> latches;    ///< latching gate indices, evaluation order
  std::vector<int> rank_sig;   ///< signal -> rank of its driving stage
  std::vector<int> depth_sig;  ///< signal -> comb depth from boundary
  bool has_feedback = false;   ///< latch loops: `order` is approximate
  int max_rank = 0;
  int max_depth = 0;
};

/// Build the graph; validates wiring and levelizes. Throws StaError on
/// combinational loops, multi-driven outputs, out-of-range inputs, or
/// latches without a clock signal.
TimingGraph build_timing_graph(const digital::Netlist& netlist,
                               const stscl::SclModel& model, double iss,
                               const StaOptions& options = {});

}  // namespace sscl::sta
