#pragma once

/// \file timing_graph.hpp
/// Levelized view of a digital::Netlist for static timing: a validated
/// topological evaluation order, per-gate fanout-aware loads and delays,
/// per-signal logic depth and pipeline rank. Latch feedback loops (state
/// machines) are legal; the edges that close them are evaluated with a
/// one-period relaxation by the analyzer. Combinational loops are not
/// and throw StaError, as do structurally broken netlists — the lint
/// comb-loop / multi-driven rules name the same defects with better
/// messages, which is why analyze() runs the DRC first by default.
///
/// The purely structural part (topological order, latch list, feedback
/// classification) is exposed separately as levelize(): sscl::lint's
/// analysis IR shares it, so the linter and the timer agree on what a
/// legal evaluation order is.

#include <vector>

#include "sta/sta.hpp"

namespace sscl::sta {

/// Structural levelization of a netlist: evaluation order plus loop
/// classification, with no timing model attached. Tolerant of broken
/// wiring (out-of-range refs are skipped as edges), so static analyses
/// can levelize netlists the strict timing path would reject.
struct Levelization {
  std::vector<int> order;      ///< topological gate evaluation order
  std::vector<int> order_pos;  ///< gate -> position in order
  std::vector<int> latches;    ///< latching gate indices, evaluation order
  bool has_feedback = false;   ///< cycles closed through latches
  /// Cycles with no latch on them: `order` appends the cycle members in
  /// construction order. build_timing_graph() turns this into StaError;
  /// lint's comb-loop pass names the cycle instead.
  bool has_comb_cycle = false;
};

/// Levelize without validating wiring: invalid signal references simply
/// contribute no edge. Never throws.
Levelization levelize(const digital::Netlist& netlist);

struct GateTiming {
  int fanout = 0;         ///< driven gate inputs at the output
  double load_cap = 0.0;  ///< fanout-aware CL [F]
  double delay = 0.0;     ///< delay at the analysis iss, kind factor in [s]
  int rank = 0;           ///< stage this gate evaluates in (1-based)
  int depth = 0;          ///< comb gates from the stage boundary, incl. self
};

struct TimingGraph {
  std::vector<int> order;      ///< topological evaluation order
  std::vector<int> order_pos;  ///< gate -> position in order
  std::vector<GateTiming> gate;
  std::vector<int> latches;    ///< latching gate indices, evaluation order
  std::vector<int> rank_sig;   ///< signal -> rank of its driving stage
  std::vector<int> depth_sig;  ///< signal -> comb depth from boundary
  bool has_feedback = false;   ///< latch loops: `order` is approximate
  int max_rank = 0;
  int max_depth = 0;
};

/// Build the graph; validates wiring and levelizes. Throws StaError on
/// combinational loops, multi-driven outputs, out-of-range inputs, or
/// latches without a clock signal.
TimingGraph build_timing_graph(const digital::Netlist& netlist,
                               const stscl::SclModel& model, double iss,
                               const StaOptions& options = {});

}  // namespace sscl::sta
