#include "sta/crosscheck.hpp"

#include <chrono>
#include <cmath>

#include "digital/fmax.hpp"

namespace sscl::sta {

bool FmaxCrossCheck::agrees(double tolerance) const {
  return f_sim > 0 && std::abs(ratio - 1.0) <= tolerance;
}

FmaxCrossCheck crosscheck_encoder_fmax(const digital::Netlist& netlist,
                                       const digital::EncoderIo& io,
                                       const stscl::SclModel& model,
                                       double iss, const StaOptions& options) {
  using Clock = std::chrono::steady_clock;
  FmaxCrossCheck xc;
  xc.iss = iss;

  const auto t0 = Clock::now();
  xc.f_sta = sta_fmax(netlist, model, iss, options);
  const auto t1 = Clock::now();
  xc.f_sim = digital::measure_encoder_fmax(netlist, io, model, iss);
  const auto t2 = Clock::now();

  xc.sta_seconds = std::chrono::duration<double>(t1 - t0).count();
  xc.sim_seconds = std::chrono::duration<double>(t2 - t1).count();
  xc.ratio = xc.f_sim > 0 ? xc.f_sta / xc.f_sim : 0.0;
  xc.speedup = xc.sta_seconds > 0 ? xc.sim_seconds / xc.sta_seconds : 0.0;
  return xc;
}

}  // namespace sscl::sta
