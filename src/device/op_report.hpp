#pragma once

/// \file op_report.hpp
/// Annotated operating-point report: node voltages, source branch
/// currents and per-MOSFET bias summaries (ID, gm, gm/ID, inversion
/// level, region) — the debugging view every analog designer expects
/// from a simulator.

#include <iosfwd>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace sscl::device {

struct MosOpInfo {
  std::string name;
  double id = 0.0;       ///< channel current [A]
  double gm = 0.0;       ///< [S]
  double gds = 0.0;      ///< [S]
  double gm_over_id = 0.0;
  double inversion = 0.0;  ///< forward inversion coefficient i_f
  bool weak_inversion = false;  ///< i_f < 0.1
};

struct OpReport {
  std::vector<std::pair<std::string, double>> node_voltages;
  std::vector<std::pair<std::string, double>> source_currents;
  std::vector<MosOpInfo> mosfets;
  double total_supply_current = 0.0;  ///< sum of V-source delivery [A]
};

/// Collect the report. The devices' cached small-signal data comes from
/// the load() of the final Newton iteration, so call right after a
/// solve with this solution.
OpReport collect_op_report(const spice::Circuit& circuit,
                           const spice::Solution& solution);

/// Pretty-print (engineering units, aligned columns).
void print_op_report(const OpReport& report, std::ostream& os);

}  // namespace sscl::device
