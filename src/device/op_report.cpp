#include "device/op_report.hpp"

#include <cmath>
#include <ostream>

#include "device/mosfet.hpp"
#include "spice/elements.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace sscl::device {

OpReport collect_op_report(const spice::Circuit& circuit,
                           const spice::Solution& solution) {
  OpReport r;
  for (int n = 0; n < circuit.node_count(); ++n) {
    r.node_voltages.emplace_back(circuit.node_name(n), solution.v(n));
  }
  for (const auto& device : circuit.devices()) {
    if (const auto* vs = dynamic_cast<const spice::VoltageSource*>(device.get())) {
      const double i = solution.branch_current(vs->branch());
      r.source_currents.emplace_back(vs->name(), i);
      // Negative branch current = the source delivers current.
      if (i < 0) r.total_supply_current += -i;
    } else if (const auto* m = dynamic_cast<const Mosfet*>(device.get())) {
      MosOpInfo info;
      info.name = m->name();
      const EkvResult& op = m->operating_point();
      info.id = op.id;
      info.gm = op.gm;
      info.gds = op.gds;
      info.gm_over_id =
          std::fabs(op.id) > 0 ? op.gm / std::fabs(op.id) : 0.0;
      info.inversion = op.i_f;
      info.weak_inversion = op.i_f < 0.1;
      r.mosfets.push_back(info);
    }
  }
  return r;
}

void print_op_report(const OpReport& report, std::ostream& os) {
  os << "Operating point\n";
  {
    util::Table t({"node", "V"});
    for (const auto& [name, v] : report.node_voltages) {
      t.row().add(name).add_unit(v, "V");
    }
    t.print(os);
  }
  if (!report.source_currents.empty()) {
    util::Table t({"source", "I(branch)"});
    for (const auto& [name, i] : report.source_currents) {
      t.row().add(name).add_unit(i, "A");
    }
    t.print(os);
  }
  if (!report.mosfets.empty()) {
    util::Table t({"mosfet", "ID", "gm", "gds", "gm/ID", "i_f", "region"});
    for (const MosOpInfo& m : report.mosfets) {
      t.row()
          .add(m.name)
          .add_unit(m.id, "A")
          .add_unit(m.gm, "S")
          .add_unit(m.gds, "S")
          .add_unit(m.gm_over_id, "/V", 3)
          .add(m.inversion, 3)
          .add(m.weak_inversion ? "weak" : "mod/strong");
    }
    t.print(os);
  }
  os << "total supply current: ";
  os << util::format_si(report.total_supply_current, "A", 4) << "\n";
}

}  // namespace sscl::device
