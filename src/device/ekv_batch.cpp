#include "device/ekv_batch.hpp"

#include <cmath>

#include "device/ekv.hpp"
#include "util/constants.hpp"

namespace sscl::device {

void EkvSoA::resize(int n) {
  const auto m = static_cast<std::size_t>(n);
  dvt.assign(m, 0.0);
  dbeta_rel.assign(m, 0.0);
  vg.assign(m, 0.0);
  vd.assign(m, 0.0);
  vs.assign(m, 0.0);
  vb.assign(m, 0.0);
  id.assign(m, 0.0);
  gm.assign(m, 0.0);
  gds.assign(m, 0.0);
  gms.assign(m, 0.0);
  gmb.assign(m, 0.0);
  ieq.assign(m, 0.0);
}

namespace {

/// One lane of the batch: the exact expression sequence of the scalar
/// ekv_evaluate() (ekv.cpp), with the temperature-dependent constants
/// hoisted by the caller. Kept in one inline helper so the masked and
/// unmasked entry points perform identical arithmetic per lane.
inline void eval_lane(const MosParams& params, const MosGeometry& geometry,
                      double ut, double sign, EkvSoA& soa, int k) {
  const double vg = soa.vg[k];
  const double vd = soa.vd[k];
  const double vs = soa.vs[k];
  const double vb = soa.vb[k];

  const double ug = sign * (vg - vb);
  const double us = sign * (vs - vb);
  const double ud = sign * (vd - vb);

  const double vt = params.vt0 + soa.dvt[k];
  const double beta =
      params.kp * (1.0 + soa.dbeta_rel[k]) * geometry.w / geometry.l;
  const double ispec = 2.0 * params.n * beta * ut * ut;

  const double vp = (ug - vt) / params.n;
  const double xf = (vp - us) / ut;
  const double xr = (vp - ud) / ut;

  const double ff = ekv_f(xf);
  const double fr = ekv_f(xr);
  const double dff = ekv_f_derivative(xf);
  const double dfr = ekv_f_derivative(xr);

  const double dv = ud - us;
  const double th = std::tanh(0.5 * dv);
  const double clm = 1.0 + params.lambda * 2.0 * th;
  const double dclm = params.lambda * (1.0 - th * th);

  const double i_core = ispec * (ff - fr);
  const double i = i_core * clm;

  const double p_g = ispec * clm * (dff - dfr) / (params.n * ut);
  const double p_d = ispec * clm * dfr / ut + i_core * dclm;
  const double p_s_neg = ispec * clm * dff / ut + i_core * dclm;

  const double out_id = sign * i;
  const double out_gm = p_g;
  const double out_gds = p_d;
  const double out_gms = p_s_neg;
  const double out_gmb = -(p_g - p_s_neg + p_d);
  soa.id[k] = out_id;
  soa.gm[k] = out_gm;
  soa.gds[k] = out_gds;
  soa.gms[k] = out_gms;
  soa.gmb[k] = out_gmb;
  // Companion current exactly as Mosfet::load computes it.
  soa.ieq[k] =
      out_id - (out_gm * vg + out_gds * vd - out_gms * vs + out_gmb * vb);
}

}  // namespace

void ekv_evaluate_batch(const MosParams& params, const MosGeometry& geometry,
                        double temperatureK, EkvSoA& soa) {
  const double ut = util::thermal_voltage(temperatureK);
  const double sign = params.is_nmos ? 1.0 : -1.0;
  const int n = soa.lanes();
  for (int k = 0; k < n; ++k) eval_lane(params, geometry, ut, sign, soa, k);
}

void ekv_evaluate_batch(const MosParams& params, const MosGeometry& geometry,
                        double temperatureK, EkvSoA& soa,
                        const std::vector<char>& active) {
  const double ut = util::thermal_voltage(temperatureK);
  const double sign = params.is_nmos ? 1.0 : -1.0;
  const int n = soa.lanes();
  for (int k = 0; k < n; ++k) {
    if (active[static_cast<std::size_t>(k)]) {
      eval_lane(params, geometry, ut, sign, soa, k);
    }
  }
}

}  // namespace sscl::device
