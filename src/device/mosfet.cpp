#include "device/mosfet.hpp"

#include <cmath>

#include "device/diode.hpp"
#include "device/ekv_batch.hpp"
#include "device/mismatch.hpp"
#include "spice/ensemble.hpp"
#include "util/constants.hpp"

namespace sscl::device {

using spice::AnalysisMode;
using spice::LoadContext;
using spice::NodeId;

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, MosParams params, MosGeometry geometry,
               double temperatureK, MosMismatch mismatch)
    : Device(std::move(name)),
      d_(drain),
      g_(gate),
      s_(source),
      b_(bulk),
      params_(params),
      geometry_(geometry),
      temperature_(temperatureK),
      mismatch_(mismatch) {
  // Weak-inversion gate capacitance estimates: overlap plus a fraction
  // of the channel capacitance to each diffusion, the rest to bulk.
  const double c_channel = params_.cox * geometry_.w * geometry_.l;
  const double c_overlap = params_.cov * geometry_.w;
  cgs_ = c_overlap + 0.25 * c_channel;
  cgd_ = c_overlap + 0.25 * c_channel;
  cgb_ = 0.3 * c_channel;

  jn_sign_ = params_.is_nmos ? 1.0 : -1.0;
  nvt_ = params_.nj * util::thermal_voltage(temperatureK);
  const double is_s = params_.js * geometry_.as;
  const double is_d = params_.js * geometry_.ad;
  vcrit_s_ = is_s > 0 ? nvt_ * std::log(nvt_ / (std::sqrt(2.0) * is_s)) : 1e9;
  vcrit_d_ = is_d > 0 ? nvt_ * std::log(nvt_ / (std::sqrt(2.0) * is_d)) : 1e9;
}

void Mosfet::setup(spice::SetupContext& ctx) { state_ = ctx.alloc_state(10); }

void Mosfet::reserve(spice::PatternContext& ctx) {
  // Channel Jacobian + Newton rhs.
  m_dg_ = ctx.nn(d_, g_);
  m_dd_ = ctx.nn(d_, d_);
  m_ds_ = ctx.nn(d_, s_);
  m_db_ = ctx.nn(d_, b_);
  m_sg_ = ctx.nn(s_, g_);
  m_sd_ = ctx.nn(s_, d_);
  m_ss_ = ctx.nn(s_, s_);
  m_sb_ = ctx.nn(s_, b_);
  r_d_ = ctx.rn(d_);
  r_s_ = ctx.rn(s_);
  // Bulk junctions (only when diffusion areas are given).
  if (geometry_.as > 0) {
    jp_s_ = jn_sign_ > 0 ? ctx.nonlinear_current(b_, s_)
                         : ctx.nonlinear_current(s_, b_);
  }
  if (geometry_.ad > 0) {
    jp_d_ = jn_sign_ > 0 ? ctx.nonlinear_current(b_, d_)
                         : ctx.nonlinear_current(d_, b_);
  }
  // Gate capacitance companions.
  cp_gs_ = ctx.nonlinear_current(g_, s_);
  cp_gd_ = ctx.nonlinear_current(g_, d_);
  cp_gb_ = ctx.nonlinear_current(g_, b_);
}

double Mosfet::gate_capacitance() const { return cgs_ + cgd_ + cgb_; }

void Mosfet::load(LoadContext& ctx) {
  const double vd = ctx.v(d_);
  const double vg = ctx.v(g_);
  const double vs = ctx.v(s_);
  const double vb = ctx.v(b_);
  const bool init = ctx.mode() == AnalysisMode::kInitState;

  // Bypass: if no terminal moved more than the Newton tolerance since
  // the last full evaluation, reuse the cached channel point and
  // junction quantities. Only the voltage-dependent model outputs are
  // cached; integrator companions are rebuilt below on every load.
  const bool bypass = !init && ctx.bypass_enabled() && cache_valid_ &&
                      ctx.within_bypass_tol(vd, vd_c_) &&
                      ctx.within_bypass_tol(vg, vg_c_) &&
                      ctx.within_bypass_tol(vs, vs_c_) &&
                      ctx.within_bypass_tol(vb, vb_c_);
  if (bypass) {
    ctx.note_bypass();
  } else {
    ctx.note_eval();
  }

  // ---- channel current -------------------------------------------------
  if (!bypass) {
    last_ = ekv_evaluate(params_, geometry_, mismatch_, vg, vd, vs, vb,
                         temperature_);
    ieq_c_ = last_.id - (last_.gm * vg + last_.gds * vd - last_.gms * vs +
                         last_.gmb * vb);
    vd_c_ = vd;
    vg_c_ = vg;
    vs_c_ = vs;
    vb_c_ = vb;
    // kInitState evaluations skip junction limiting, so they must not
    // seed the bypass cache.
    cache_valid_ = !init;
  }

  if (!init) {
    // Jacobian of the d->s current w.r.t. all four terminals.
    ctx.add_at(m_dg_, last_.gm);
    ctx.add_at(m_dd_, last_.gds);
    ctx.add_at(m_ds_, -last_.gms);
    ctx.add_at(m_db_, last_.gmb);
    ctx.add_at(m_sg_, -last_.gm);
    ctx.add_at(m_sd_, -last_.gds);
    ctx.add_at(m_ss_, last_.gms);
    ctx.add_at(m_sb_, -last_.gmb);
    ctx.add_rhs_at(r_d_, -ieq_c_);
    ctx.add_rhs_at(r_s_, ieq_c_);
  }

  // ---- source/drain junction diodes (bulk<->diffusion) ------------------
  // NMOS: p-bulk anode to n+ diffusion cathode; PMOS mirrored.
  auto do_junction = [&](NodeId diff, double area,
                         const spice::NonlinearPattern& pat, double& v_last,
                         double vcrit, int state_base, JunctionCache& jc,
                         double& g_cache, double& c_cache) {
    if (area <= 0) {
      g_cache = 0;
      c_cache = 0;
      return;
    }
    if (!bypass) {
      const double is_eff = params_.js * area;
      const double cj_eff = params_.cj0 * area;
      double v = jn_sign_ * (vb - ctx.v(diff));
      if (!init) {
        bool limited = false;
        v = pnjlim(v, v_last, nvt_, vcrit, &limited);
        if (limited) ctx.set_not_converged();
        v_last = v;
      }
      junction_current(v, is_eff, nvt_, jc.ij, jc.gj);
      junction_charge(v, cj_eff, params_.mj, params_.pb, 0.5, jc.qj, jc.cj);
      const NodeId anode = jn_sign_ > 0 ? b_ : diff;
      const NodeId cathode = jn_sign_ > 0 ? diff : b_;
      jc.v_ak = ctx.v(anode) - ctx.v(cathode);
    }
    g_cache = jc.gj;
    c_cache = jc.cj;

    switch (ctx.mode()) {
      case AnalysisMode::kDcOp:
        ctx.stamp_nonlinear_current(pat, jc.ij, jc.gj, jc.v_ak);
        return;
      case AnalysisMode::kInitState:
        ctx.set_state(state_base, jc.qj);
        ctx.set_state(state_base + 1, 0.0);
        return;
      case AnalysisMode::kTransient: {
        const double ic = ctx.integrate_charge(state_base, jc.qj);
        const double geq = ctx.integ_a0() * jc.cj;
        ctx.stamp_nonlinear_current(pat, jc.ij + ic, jc.gj + geq, jc.v_ak);
        return;
      }
    }
  };
  do_junction(s_, geometry_.as, jp_s_, vjs_last_, vcrit_s_, state_ + 6, jc_s_,
              jgs_, cbs_);
  do_junction(d_, geometry_.ad, jp_d_, vjd_last_, vcrit_d_, state_ + 8, jc_d_,
              jgd_, cbd_);

  // ---- gate capacitances -------------------------------------------------
  // Linear in the terminal voltages, so never bypassed: the companion is
  // exact at the candidate point and costs no model evaluation.
  auto do_cap = [&](NodeId a, NodeId bnode, const spice::NonlinearPattern& pat,
                    double c, int state_base) {
    const double v = ctx.v(a) - ctx.v(bnode);
    const double q = c * v;
    switch (ctx.mode()) {
      case AnalysisMode::kDcOp:
        return;
      case AnalysisMode::kInitState:
        ctx.set_state(state_base, q);
        ctx.set_state(state_base + 1, 0.0);
        return;
      case AnalysisMode::kTransient: {
        const double ic = ctx.integrate_charge(state_base, q);
        ctx.stamp_nonlinear_current(pat, ic, ctx.integ_a0() * c, v);
        return;
      }
    }
  };
  do_cap(g_, s_, cp_gs_, cgs_, state_);
  do_cap(g_, d_, cp_gd_, cgd_, state_ + 2);
  do_cap(g_, b_, cp_gb_, cgb_, state_ + 4);
}

bool Mosfet::perturb_sample(const util::Rng& stream, std::uint64_t ordinal) {
  set_mismatch(sample_mismatch(params_, geometry_, stream, ordinal));
  return true;
}

/// EnsembleChannel of one MOSFET: parameter and model-output lanes in
/// an EkvSoA, stamped through the slots the device reserved during the
/// worker engine's pattern pass. Nested in Mosfet for slot access; the
/// device object itself is never written.
class Mosfet::Channel final : public spice::EnsembleChannel {
 public:
  explicit Channel(const Mosfet& m) : m_(m) {}

  void sample_params(const util::Rng& base, std::uint64_t first_sample,
                     int count, std::uint64_t ordinal) override {
    soa_.resize(count);
    sample_mismatch_lanes(m_.params_, m_.geometry_, base, first_sample,
                          ordinal, count, soa_.dvt.data(),
                          soa_.dbeta_rel.data());
  }

  void evaluate(const std::vector<const double*>& xs,
                const std::vector<char>& active) override {
    const int count = soa_.lanes();
    for (int k = 0; k < count; ++k) {
      if (!active[k]) continue;
      const double* x = xs[k];
      soa_.vg[k] = volt(x, m_.g_);
      soa_.vd[k] = volt(x, m_.d_);
      soa_.vs[k] = volt(x, m_.s_);
      soa_.vb[k] = volt(x, m_.b_);
    }
    ekv_evaluate_batch(m_.params_, m_.geometry_, m_.temperature_, soa_,
                       active);
  }

  void stamp(spice::LoadContext& ctx, int k) const override {
    // Same slots, same order, same values as the !init branch of
    // Mosfet::load (gate caps do not stamp at DC, and channels are
    // only built for junction-free geometries).
    ctx.add_at(m_.m_dg_, soa_.gm[k]);
    ctx.add_at(m_.m_dd_, soa_.gds[k]);
    ctx.add_at(m_.m_ds_, -soa_.gms[k]);
    ctx.add_at(m_.m_db_, soa_.gmb[k]);
    ctx.add_at(m_.m_sg_, -soa_.gm[k]);
    ctx.add_at(m_.m_sd_, -soa_.gds[k]);
    ctx.add_at(m_.m_ss_, soa_.gms[k]);
    ctx.add_at(m_.m_sb_, -soa_.gmb[k]);
    ctx.add_rhs_at(m_.r_d_, -soa_.ieq[k]);
    ctx.add_rhs_at(m_.r_s_, soa_.ieq[k]);
  }

 private:
  static double volt(const double* x, spice::NodeId node) {
    return node == spice::kGround ? 0.0 : x[node];
  }

  const Mosfet& m_;
  EkvSoA soa_;
};

std::unique_ptr<spice::EnsembleChannel> Mosfet::make_ensemble_channel() {
  if (geometry_.as > 0 || geometry_.ad > 0) return nullptr;
  return std::make_unique<Channel>(*this);
}

void Mosfet::add_noise(spice::NoiseContext& ctx) const {
  // In weak inversion the channel noise is full shot noise of the
  // drain current: S_i = 2 q |ID| (equals 4kT*gm/2 via gm = I/(n UT),
  // the Vittoz result). Junction leakage shot noise is negligible at
  // the reverse biases used here but included for completeness.
  constexpr double kQ = 1.602176634e-19;
  ctx.add(d_, s_, 2.0 * kQ * std::fabs(last_.id), "channel(" + name() + ")");
}

void Mosfet::load_ac(spice::AcContext& ctx) const {
  const double gm = last_.gm;
  const double gds = last_.gds;
  const double gms = last_.gms;
  const double gmb = last_.gmb;

  ctx.a_nn(d_, g_, {gm, 0});
  ctx.a_nn(d_, d_, {gds, 0});
  ctx.a_nn(d_, s_, {-gms, 0});
  ctx.a_nn(d_, b_, {gmb, 0});
  ctx.a_nn(s_, g_, {-gm, 0});
  ctx.a_nn(s_, d_, {-gds, 0});
  ctx.a_nn(s_, s_, {gms, 0});
  ctx.a_nn(s_, b_, {-gmb, 0});

  const double w = ctx.omega();
  ctx.stamp_admittance(g_, s_, {0, w * cgs_});
  ctx.stamp_admittance(g_, d_, {0, w * cgd_});
  ctx.stamp_admittance(g_, b_, {0, w * cgb_});
  if (jgs_ > 0 || cbs_ > 0) ctx.stamp_admittance(b_, s_, {jgs_, w * cbs_});
  if (jgd_ > 0 || cbd_ > 0) ctx.stamp_admittance(b_, d_, {jgd_, w * cbd_});
}

bool Mosfet::describe(spice::DeviceInfo& info) const {
  info.kind = "mosfet";
  info.terminals = {{"drain", d_}, {"gate", g_}, {"source", s_}, {"bulk", b_}};
  // The channel conducts at every bias in EKV (weak-inversion leakage),
  // and the bulk junctions conduct as diodes; the gate only couples
  // capacitively.
  info.edges = {
      {d_, s_, spice::DcCoupling::kConductive, 0.0},
      {b_, s_, spice::DcCoupling::kConductive, 0.0},
      {b_, d_, spice::DcCoupling::kConductive, 0.0},
      {g_, s_, spice::DcCoupling::kOpen, cgs_},
      {g_, d_, spice::DcCoupling::kOpen, cgd_},
  };
  info.is_mosfet = true;
  info.is_nmos = params_.is_nmos;
  info.ispec =
      ekv_evaluate(params_, geometry_, mismatch_, 0, 0, 0, 0, temperature_)
          .ispec;
  info.mos_d = d_;
  info.mos_g = g_;
  info.mos_s = s_;
  info.mos_b = b_;
  // DC model card as instantiated, mismatch folded, for the op-region
  // interval evaluator. mos_temp records the temperature the card (and
  // the folded vt0/kp) are valid at.
  info.mos_vt0 = params_.vt0 + mismatch_.dvt;
  info.mos_n = params_.n;
  info.mos_kp = params_.kp * (1.0 + mismatch_.dbeta_rel);
  info.mos_lambda = params_.lambda;
  info.mos_w = geometry_.w;
  info.mos_l = geometry_.l;
  info.mos_temp = temperature_;
  info.mos_ijs_s = params_.js * geometry_.as;
  info.mos_ijs_d = params_.js * geometry_.ad;
  info.mos_nj = params_.nj;
  return true;
}

}  // namespace sscl::device
