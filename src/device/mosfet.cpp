#include "device/mosfet.hpp"

#include <cmath>

#include "device/diode.hpp"
#include "util/constants.hpp"

namespace sscl::device {

using spice::AnalysisMode;
using spice::LoadContext;
using spice::NodeId;

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, MosParams params, MosGeometry geometry,
               double temperatureK, MosMismatch mismatch)
    : Device(std::move(name)),
      d_(drain),
      g_(gate),
      s_(source),
      b_(bulk),
      params_(params),
      geometry_(geometry),
      temperature_(temperatureK),
      mismatch_(mismatch) {
  // Weak-inversion gate capacitance estimates: overlap plus a fraction
  // of the channel capacitance to each diffusion, the rest to bulk.
  const double c_channel = params_.cox * geometry_.w * geometry_.l;
  const double c_overlap = params_.cov * geometry_.w;
  cgs_ = c_overlap + 0.25 * c_channel;
  cgd_ = c_overlap + 0.25 * c_channel;
  cgb_ = 0.3 * c_channel;

  jn_sign_ = params_.is_nmos ? 1.0 : -1.0;
  nvt_ = params_.nj * util::thermal_voltage(temperatureK);
  const double is_s = params_.js * geometry_.as;
  const double is_d = params_.js * geometry_.ad;
  vcrit_s_ = is_s > 0 ? nvt_ * std::log(nvt_ / (std::sqrt(2.0) * is_s)) : 1e9;
  vcrit_d_ = is_d > 0 ? nvt_ * std::log(nvt_ / (std::sqrt(2.0) * is_d)) : 1e9;
}

void Mosfet::setup(spice::SetupContext& ctx) { state_ = ctx.alloc_state(10); }

double Mosfet::gate_capacitance() const { return cgs_ + cgd_ + cgb_; }

void Mosfet::load(LoadContext& ctx) {
  const double vd = ctx.v(d_);
  const double vg = ctx.v(g_);
  const double vs = ctx.v(s_);
  const double vb = ctx.v(b_);

  // ---- channel current -------------------------------------------------
  last_ = ekv_evaluate(params_, geometry_, mismatch_, vg, vd, vs, vb,
                       temperature_);

  if (ctx.mode() != AnalysisMode::kInitState) {
    const double i = last_.id;
    const double gm = last_.gm;
    const double gds = last_.gds;
    const double gms = last_.gms;
    const double gmb = last_.gmb;

    // Jacobian of the d->s current w.r.t. all four terminals.
    ctx.a_nn(d_, g_, gm);
    ctx.a_nn(d_, d_, gds);
    ctx.a_nn(d_, s_, -gms);
    ctx.a_nn(d_, b_, gmb);
    ctx.a_nn(s_, g_, -gm);
    ctx.a_nn(s_, d_, -gds);
    ctx.a_nn(s_, s_, gms);
    ctx.a_nn(s_, b_, -gmb);

    const double ieq = i - (gm * vg + gds * vd - gms * vs + gmb * vb);
    ctx.rhs_n(d_, -ieq);
    ctx.rhs_n(s_, ieq);
  }

  // ---- source/drain junction diodes (bulk<->diffusion) ------------------
  // NMOS: p-bulk anode to n+ diffusion cathode; PMOS mirrored.
  auto do_junction = [&](NodeId diff, double area, double& v_last,
                         double vcrit, int state_base, double& g_cache,
                         double& c_cache) {
    if (area <= 0) {
      g_cache = 0;
      c_cache = 0;
      return;
    }
    const double is_eff = params_.js * area;
    const double cj_eff = params_.cj0 * area;
    double v = jn_sign_ * (vb - ctx.v(diff));
    if (ctx.mode() != AnalysisMode::kInitState) {
      bool limited = false;
      v = pnjlim(v, v_last, nvt_, vcrit, &limited);
      if (limited) ctx.set_not_converged();
      v_last = v;
    }
    double ij = 0, gj = 0;
    junction_current(v, is_eff, nvt_, ij, gj);
    double qj = 0, cj = 0;
    junction_charge(v, cj_eff, params_.mj, params_.pb, 0.5, qj, cj);
    g_cache = gj;
    c_cache = cj;

    const NodeId anode = jn_sign_ > 0 ? b_ : diff;
    const NodeId cathode = jn_sign_ > 0 ? diff : b_;
    const double v_ak = ctx.v(anode) - ctx.v(cathode);
    switch (ctx.mode()) {
      case AnalysisMode::kDcOp:
        ctx.stamp_nonlinear_current(anode, cathode, ij, gj, v_ak);
        return;
      case AnalysisMode::kInitState:
        ctx.set_state(state_base, qj);
        ctx.set_state(state_base + 1, 0.0);
        return;
      case AnalysisMode::kTransient: {
        const double ic = ctx.integrate_charge(state_base, qj);
        const double geq = ctx.integ_a0() * cj;
        ctx.stamp_nonlinear_current(anode, cathode, ij + ic, gj + geq, v_ak);
        return;
      }
    }
  };
  do_junction(s_, geometry_.as, vjs_last_, vcrit_s_, state_ + 6, jgs_, cbs_);
  do_junction(d_, geometry_.ad, vjd_last_, vcrit_d_, state_ + 8, jgd_, cbd_);

  // ---- gate capacitances -------------------------------------------------
  auto do_cap = [&](NodeId a, NodeId bnode, double c, int state_base) {
    const double v = ctx.v(a) - ctx.v(bnode);
    const double q = c * v;
    switch (ctx.mode()) {
      case AnalysisMode::kDcOp:
        return;
      case AnalysisMode::kInitState:
        ctx.set_state(state_base, q);
        ctx.set_state(state_base + 1, 0.0);
        return;
      case AnalysisMode::kTransient: {
        const double ic = ctx.integrate_charge(state_base, q);
        ctx.stamp_nonlinear_current(a, bnode, ic, ctx.integ_a0() * c, v);
        return;
      }
    }
  };
  do_cap(g_, s_, cgs_, state_);
  do_cap(g_, d_, cgd_, state_ + 2);
  do_cap(g_, b_, cgb_, state_ + 4);
}

void Mosfet::add_noise(spice::NoiseContext& ctx) const {
  // In weak inversion the channel noise is full shot noise of the
  // drain current: S_i = 2 q |ID| (equals 4kT*gm/2 via gm = I/(n UT),
  // the Vittoz result). Junction leakage shot noise is negligible at
  // the reverse biases used here but included for completeness.
  constexpr double kQ = 1.602176634e-19;
  ctx.add(d_, s_, 2.0 * kQ * std::fabs(last_.id), "channel(" + name() + ")");
}

void Mosfet::load_ac(spice::AcContext& ctx) const {
  const double gm = last_.gm;
  const double gds = last_.gds;
  const double gms = last_.gms;
  const double gmb = last_.gmb;

  ctx.a_nn(d_, g_, {gm, 0});
  ctx.a_nn(d_, d_, {gds, 0});
  ctx.a_nn(d_, s_, {-gms, 0});
  ctx.a_nn(d_, b_, {gmb, 0});
  ctx.a_nn(s_, g_, {-gm, 0});
  ctx.a_nn(s_, d_, {-gds, 0});
  ctx.a_nn(s_, s_, {gms, 0});
  ctx.a_nn(s_, b_, {-gmb, 0});

  const double w = ctx.omega();
  ctx.stamp_admittance(g_, s_, {0, w * cgs_});
  ctx.stamp_admittance(g_, d_, {0, w * cgd_});
  ctx.stamp_admittance(g_, b_, {0, w * cgb_});
  if (jgs_ > 0 || cbs_ > 0) ctx.stamp_admittance(b_, s_, {jgs_, w * cbs_});
  if (jgd_ > 0 || cbd_ > 0) ctx.stamp_admittance(b_, d_, {jgd_, w * cbd_});
}

bool Mosfet::describe(spice::DeviceInfo& info) const {
  info.kind = "mosfet";
  info.terminals = {{"drain", d_}, {"gate", g_}, {"source", s_}, {"bulk", b_}};
  // The channel conducts at every bias in EKV (weak-inversion leakage),
  // and the bulk junctions conduct as diodes; the gate only couples
  // capacitively.
  info.edges = {
      {d_, s_, spice::DcCoupling::kConductive, 0.0},
      {b_, s_, spice::DcCoupling::kConductive, 0.0},
      {b_, d_, spice::DcCoupling::kConductive, 0.0},
      {g_, s_, spice::DcCoupling::kOpen, cgs_},
      {g_, d_, spice::DcCoupling::kOpen, cgd_},
  };
  info.is_mosfet = true;
  info.is_nmos = params_.is_nmos;
  info.ispec =
      ekv_evaluate(params_, geometry_, mismatch_, 0, 0, 0, 0, temperature_)
          .ispec;
  info.mos_d = d_;
  info.mos_g = g_;
  info.mos_s = s_;
  info.mos_b = b_;
  return true;
}

}  // namespace sscl::device
