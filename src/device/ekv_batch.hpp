#pragma once

/// \file ekv_batch.hpp
/// Struct-of-arrays (SoA) evaluation of the EKV model *across Monte-Carlo
/// samples*: one device, many mismatch realisations. The lanes hold the
/// per-sample parameter draws (the "parameter slots" device::sample_mismatch
/// writes into instead of mutating device objects) plus the per-sample
/// terminal voltages; ekv_evaluate_batch() fills the output lanes with
/// exactly the arithmetic of the scalar ekv_evaluate() per lane, so the
/// batched ensemble engine reproduces the per-sample engine's model values
/// lane for lane (see tests/device/test_ekv_batch.cpp).
///
/// The lane loop is written branch-light over contiguous arrays so the
/// polynomial part auto-vectorizes; the transcendentals (exp/log1p/tanh)
/// stay libm calls, which keeps lane k's arithmetic independent of which
/// other lanes are present -- the property the ensemble determinism
/// contract rests on (docs/ENGINE.md).

#include <vector>

#include "device/mos_params.hpp"

namespace sscl::device {

/// Parameter/voltage/output lanes of one MOS device across an ensemble
/// block. Lane k belongs to one Monte-Carlo sample.
struct EkvSoA {
  // Parameter slots (filled by sample_mismatch_lanes).
  std::vector<double> dvt;        ///< per-sample VT shift [V]
  std::vector<double> dbeta_rel;  ///< per-sample relative beta error

  // Gathered terminal voltages of the candidate solutions.
  std::vector<double> vg, vd, vs, vb;

  // Model outputs (same meaning as EkvResult).
  std::vector<double> id, gm, gds, gms, gmb;
  /// Newton companion current ieq = id - (gm*vg + gds*vd - gms*vs + gmb*vb).
  std::vector<double> ieq;

  int lanes() const { return static_cast<int>(dvt.size()); }
  void resize(int n);
};

/// Evaluate every lane: lane k reproduces
/// ekv_evaluate(params, geometry, {dvt[k], dbeta_rel[k]},
///              vg[k], vd[k], vs[k], vb[k], temperatureK)
/// including the companion current ieq[k].
void ekv_evaluate_batch(const MosParams& params, const MosGeometry& geometry,
                        double temperatureK, EkvSoA& soa);

/// Masked variant: only lanes with active[k] != 0 are evaluated; inactive
/// lanes keep their previous outputs. Lane arithmetic is elementwise, so
/// the mask never changes the values computed for active lanes.
void ekv_evaluate_batch(const MosParams& params, const MosGeometry& geometry,
                        double temperatureK, EkvSoA& soa,
                        const std::vector<char>& active);

}  // namespace sscl::device
