#pragma once

/// \file mismatch.hpp
/// Monte-Carlo sampling of per-instance device mismatch following the
/// Pelgrom law: sigma scales as 1/sqrt(W*L). The paper relies on "large
/// enough transistor sizes" to control mismatch (Section III-B); the ADC
/// Monte-Carlo harness samples from here.

#include "device/mos_params.hpp"
#include "util/rng.hpp"

namespace sscl::device {

/// Draw a mismatch sample for one MOS instance, consuming the shared
/// generator (sequential Monte-Carlo; draw order couples instances).
MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry, util::Rng& rng);

/// Draw the mismatch of instance \p instance as a pure function of
/// (base seed, instance id): the sample comes from base.fork(instance),
/// so it does not depend on how many draws other instances consumed.
/// This is the form the parallel runner requires (docs/RUNNER.md).
MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry,
                            const util::Rng& base, std::uint64_t instance);

/// Batched (SoA) form of the pure-fork sampler: write the mismatch of
/// device \p instance for the \p count consecutive samples starting at
/// \p first_sample into the dvt / dbeta_rel parameter lanes. Lane k
/// holds exactly sample_mismatch(params, geometry,
/// base.fork(first_sample + k), instance) -- a pure function of
/// (base seed, sample id, instance), so a lane is independent of the
/// block it is evaluated in and of every other device's draws. This is
/// the parameter-slot interface the ensemble engine stages device
/// parameters through instead of mutating device objects.
void sample_mismatch_lanes(const MosParams& params,
                           const MosGeometry& geometry, const util::Rng& base,
                           std::uint64_t first_sample, std::uint64_t instance,
                           int count, double* dvt, double* dbeta_rel);

/// Sigma of the offset voltage of a differential pair built from two
/// devices of this geometry: sqrt(2) * sigma_VT (beta mismatch is a
/// second-order contribution in weak inversion and is folded in via the
/// n*UT/2 factor).
double pair_offset_sigma(const MosParams& params, const MosGeometry& geometry,
                         double temperatureK);

}  // namespace sscl::device
