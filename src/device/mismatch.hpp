#pragma once

/// \file mismatch.hpp
/// Monte-Carlo sampling of per-instance device mismatch following the
/// Pelgrom law: sigma scales as 1/sqrt(W*L). The paper relies on "large
/// enough transistor sizes" to control mismatch (Section III-B); the ADC
/// Monte-Carlo harness samples from here.

#include "device/mos_params.hpp"
#include "util/rng.hpp"

namespace sscl::device {

/// Draw a mismatch sample for one MOS instance, consuming the shared
/// generator (sequential Monte-Carlo; draw order couples instances).
MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry, util::Rng& rng);

/// Draw the mismatch of instance \p instance as a pure function of
/// (base seed, instance id): the sample comes from base.fork(instance),
/// so it does not depend on how many draws other instances consumed.
/// This is the form the parallel runner requires (docs/RUNNER.md).
MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry,
                            const util::Rng& base, std::uint64_t instance);

/// Sigma of the offset voltage of a differential pair built from two
/// devices of this geometry: sqrt(2) * sigma_VT (beta mismatch is a
/// second-order contribution in weak inversion and is folded in via the
/// n*UT/2 factor).
double pair_offset_sigma(const MosParams& params, const MosGeometry& geometry,
                         double temperatureK);

}  // namespace sscl::device
