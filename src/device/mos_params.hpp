#pragma once

/// \file mos_params.hpp
/// MOS model cards, device geometry and Pelgrom mismatch descriptors for
/// the simplified EKV model. Parameter values are grouped into a Process
/// that mimics a generic 0.18um CMOS node (the paper's technology).

#include <string>

namespace sscl::device {

/// Model card for the simplified EKV MOSFET.
///
/// The model is charge-symmetric and exact in weak inversion — the
/// operating region every circuit in the platform lives in:
///   ID = Ispec * [F((VP-VS)/UT) - F((VP-VD)/UT)],  F(v) = ln^2(1+e^(v/2))
/// with VP = (VG-VT0)/n and Ispec = 2 n (KP W/L) UT^2, all voltages
/// bulk-referenced.
struct MosParams {
  bool is_nmos = true;
  double vt0 = 0.45;      ///< threshold voltage magnitude [V]
  double n = 1.35;        ///< subthreshold slope factor
  double kp = 300e-6;     ///< transconductance parameter mu*Cox [A/V^2]
  double lambda = 0.02;   ///< channel-length modulation [1/V]
  double cox = 8.5e-3;    ///< gate oxide capacitance per area [F/m^2]
  double cov = 3.0e-10;   ///< gate overlap capacitance per width [F/m]
  double cj0 = 1.0e-3;    ///< junction capacitance per area [F/m^2]
  double mj = 0.5;        ///< junction grading coefficient
  double pb = 0.8;        ///< junction built-in potential [V]
  double js = 1.0e-7;     ///< junction saturation current per area [A/m^2]
  double nj = 1.0;        ///< junction emission coefficient

  // Pelgrom mismatch coefficients.
  double avt = 3.5e-9;    ///< sigma(VT)*sqrt(WL): 3.5 mV*um [V*m]
  double abeta = 1.0e-8;  ///< sigma(dB/B)*sqrt(WL): 1 %*um [m]
};

/// Drawn geometry of a MOS instance.
struct MosGeometry {
  double w = 1e-6;  ///< channel width [m]
  double l = 1e-6;  ///< channel length [m]
  /// Source/drain junction areas for parasitics [m^2]; 0 disables them.
  double as = 0.0;
  double ad = 0.0;
};

/// Sampled per-instance mismatch (zero by default).
struct MosMismatch {
  double dvt = 0.0;        ///< threshold shift [V]
  double dbeta_rel = 0.0;  ///< relative current-factor error
};

/// A process corner: model cards for the device flavours the platform
/// uses plus environmental conditions.
struct Process {
  MosParams nmos;
  MosParams pmos;
  MosParams nmos_hvt;  ///< high-VT tail device (precise bias control)
  MosParams nmos_thick;  ///< thick-oxide device (negligible gate leakage)
  double temperature = 300.15;  ///< [K]

  /// Generic 0.18um-like CMOS process, typical corner. Calibrated so the
  /// STSCL cells land in the paper's operating envelope (Vsw = 200 mV at
  /// tail currents of 1 pA..100 nA, VDD down to 0.35 V).
  static Process c180();

  /// Corner variants used by the PVT sensitivity experiments.
  static Process c180_fast();
  static Process c180_slow();

  /// Copy with a new temperature [K]. Applies the first-order silicon
  /// temperature dependences to every card: VT drops ~1 mV/K and the
  /// mobility follows T^-1.5 (so the on-current of a subthreshold
  /// device still RISES with temperature through the exponential).
  Process at_temperature(double kelvin) const;
};

/// Pelgrom-law standard deviations for a device of the given geometry.
struct MismatchSigmas {
  double sigma_vt = 0.0;
  double sigma_beta_rel = 0.0;
};
MismatchSigmas mismatch_sigmas(const MosParams& params,
                               const MosGeometry& geometry);

}  // namespace sscl::device
