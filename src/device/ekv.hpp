#pragma once

/// \file ekv.hpp
/// Core evaluation of the simplified EKV MOS model: drain current and
/// all small-signal partial derivatives, valid from deep weak inversion
/// through strong inversion with a single smooth expression.

#include "device/mos_params.hpp"
#include "util/interval.hpp"

namespace sscl::device {

/// Result of one EKV evaluation.
///
/// Sign convention: `id` is the channel current flowing from the drain
/// terminal to the source terminal through the device (positive for a
/// conducting NMOS with VD > VS, negative for a conducting PMOS).
struct EkvResult {
  double id = 0.0;   ///< drain->source channel current [A]
  double gm = 0.0;   ///< d id / d vg [S]
  double gds = 0.0;  ///< d id / d vd [S]
  double gms = 0.0;  ///< -d id / d vs [S] (positive for a forward device)
  double gmb = 0.0;  ///< d id / d vb [S]
  double i_f = 0.0;  ///< normalised forward current (inversion level)
  double i_r = 0.0;  ///< normalised reverse current
  double ispec = 0.0;  ///< specific current 2 n beta UT^2 [A]
};

/// The EKV interpolation function F(v) = ln^2(1 + exp(v/2)) and its
/// derivative. Exponential for v << 0 (weak inversion), quadratic for
/// v >> 0 (strong inversion); overflow-free for all v.
double ekv_f(double v);
double ekv_f_derivative(double v);

/// Evaluate the model. Terminal voltages are absolute node voltages;
/// PMOS devices are handled internally by sign reflection.
EkvResult ekv_evaluate(const MosParams& params, const MosGeometry& geometry,
                       const MosMismatch& mismatch, double vg, double vd,
                       double vs, double vb, double temperatureK);

/// Gate-source voltage required to conduct \p id in saturation at the
/// given inversion conditions (VS = VB). Used by bias planning: in weak
/// inversion this is VT0 + n*UT*ln(id/ispec) (approximately). Solved by
/// bisection on the full model, so it is exact in all regions.
double ekv_vgs_for_current(const MosParams& params, const MosGeometry& geometry,
                           double id, double vds, double temperatureK);

/// Convenience: the weak-inversion slope n*UT*ln(10) in volts/decade.
double subthreshold_swing(const MosParams& params, double temperatureK);

// ---- Interval (box) evaluation for static analysis -------------------

/// Conservative bounds of one EKV evaluation over a box of terminal
/// voltages and temperatures. Every field contains the corresponding
/// scalar ekv_evaluate() output for every point of the input box.
struct EkvIntervalResult {
  util::Interval id;     ///< drain->source terminal current [A]
  util::Interval i_f;    ///< forward inversion coefficient IC
  util::Interval i_r;    ///< reverse inversion coefficient
  util::Interval ispec;  ///< specific current 2 n beta UT^2 [A]
  util::Interval vdsat;  ///< saturation voltage UT (2 sqrt(IC) + 4) [V]
  util::Interval ut;     ///< thermal voltage over the temperature box [V]
  util::Interval vp;     ///< pinch-off voltage (reflected frame) [V]
};

/// Evaluate the EKV model over a box. \p params is the model card valid
/// at \p cardTemperatureK (mismatch already folded by the caller); the
/// temperature box \p tK is handled *inside* by mirroring the
/// Process::at_temperature dependences (VT drops 1 mV/K, KP scales as
/// (T/Tcard)^-1.5, UT = kT/q), so the result bounds ekv_evaluate() of
/// the re-derived card at every temperature in the box.
///
/// \p clm_dv_hint (optional, unreflected vd - vs) freezes the
/// channel-length-modulation factor at the hinted box instead of the
/// vd/vs arguments. The op-region bisection uses this to keep each
/// output bound monotone in a substituted terminal voltage: with CLM
/// frozen at the full node box the result is still a superset of the
/// true image. Inclusion-isotone: a nested input box (with a nested
/// hint) yields a nested result.
EkvIntervalResult ekv_evaluate_interval(
    const MosParams& params, const MosGeometry& geometry,
    const util::Interval& vg, const util::Interval& vd,
    const util::Interval& vs, const util::Interval& vb,
    const util::Interval& tK, double cardTemperatureK,
    const util::Interval* clm_dv_hint = nullptr);

/// Reference-frame variant: \p ug, \p ud, \p us are the bulk-referenced
/// terminal voltages *already reflected* into the NMOS frame (for PMOS,
/// ug = vb - vg and so on); \p clm_dv is the reflected vd - vs box the
/// CLM factor is evaluated over. Interval subtraction of two boxes of
/// the same net widens to nonzero (vd - vb != 0 even when drain and
/// bulk are the same node), so callers that know the netlist aliasing
/// compute the differences themselves — collapsing aliased terminals to
/// an exact zero — and enter here. ekv_evaluate_interval() is the
/// alias-oblivious wrapper over this function.
EkvIntervalResult ekv_evaluate_interval_refs(
    const MosParams& params, const MosGeometry& geometry,
    const util::Interval& ug, const util::Interval& ud,
    const util::Interval& us, const util::Interval& clm_dv,
    const util::Interval& tK, double cardTemperatureK);

}  // namespace sscl::device
