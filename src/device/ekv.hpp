#pragma once

/// \file ekv.hpp
/// Core evaluation of the simplified EKV MOS model: drain current and
/// all small-signal partial derivatives, valid from deep weak inversion
/// through strong inversion with a single smooth expression.

#include "device/mos_params.hpp"

namespace sscl::device {

/// Result of one EKV evaluation.
///
/// Sign convention: `id` is the channel current flowing from the drain
/// terminal to the source terminal through the device (positive for a
/// conducting NMOS with VD > VS, negative for a conducting PMOS).
struct EkvResult {
  double id = 0.0;   ///< drain->source channel current [A]
  double gm = 0.0;   ///< d id / d vg [S]
  double gds = 0.0;  ///< d id / d vd [S]
  double gms = 0.0;  ///< -d id / d vs [S] (positive for a forward device)
  double gmb = 0.0;  ///< d id / d vb [S]
  double i_f = 0.0;  ///< normalised forward current (inversion level)
  double i_r = 0.0;  ///< normalised reverse current
  double ispec = 0.0;  ///< specific current 2 n beta UT^2 [A]
};

/// The EKV interpolation function F(v) = ln^2(1 + exp(v/2)) and its
/// derivative. Exponential for v << 0 (weak inversion), quadratic for
/// v >> 0 (strong inversion); overflow-free for all v.
double ekv_f(double v);
double ekv_f_derivative(double v);

/// Evaluate the model. Terminal voltages are absolute node voltages;
/// PMOS devices are handled internally by sign reflection.
EkvResult ekv_evaluate(const MosParams& params, const MosGeometry& geometry,
                       const MosMismatch& mismatch, double vg, double vd,
                       double vs, double vb, double temperatureK);

/// Gate-source voltage required to conduct \p id in saturation at the
/// given inversion conditions (VS = VB). Used by bias planning: in weak
/// inversion this is VT0 + n*UT*ln(id/ispec) (approximately). Solved by
/// bisection on the full model, so it is exact in all regions.
double ekv_vgs_for_current(const MosParams& params, const MosGeometry& geometry,
                           double id, double vds, double temperatureK);

/// Convenience: the weak-inversion slope n*UT*ln(10) in volts/decade.
double subthreshold_swing(const MosParams& params, double temperatureK);

}  // namespace sscl::device
