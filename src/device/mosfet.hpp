#pragma once

/// \file mosfet.hpp
/// Four-terminal MOSFET circuit element wrapping the EKV evaluator, with
/// gate capacitances, optional source/drain junction diodes and
/// per-instance Pelgrom mismatch.

#include "device/ekv.hpp"
#include "device/mos_params.hpp"
#include "spice/device.hpp"

namespace sscl::device {

class Mosfet final : public spice::Device {
 public:
  Mosfet(std::string name, spice::NodeId drain, spice::NodeId gate,
         spice::NodeId source, spice::NodeId bulk, MosParams params,
         MosGeometry geometry, double temperatureK = 300.15,
         MosMismatch mismatch = {});

  void setup(spice::SetupContext& ctx) override;
  void reserve(spice::PatternContext& ctx) override;
  void load(spice::LoadContext& ctx) override;
  void load_ac(spice::AcContext& ctx) const override;
  void add_noise(spice::NoiseContext& ctx) const override;
  bool describe(spice::DeviceInfo& info) const override;
  void reset_runtime() override {
    cache_valid_ = false;
    vjs_last_ = vjd_last_ = 0.0;
    last_ = EkvResult{};
    jgs_ = jgd_ = cbs_ = cbd_ = 0.0;
  }
  bool perturb_sample(const util::Rng& stream, std::uint64_t ordinal) override;
  /// Batched Monte-Carlo channel staging mismatch in SoA lanes
  /// (ekv_batch.hpp). Returns nullptr when bulk junctions are present:
  /// they stamp at DC and carry limiting state across loads, which the
  /// lane-parallel path cannot stage.
  std::unique_ptr<spice::EnsembleChannel> make_ensemble_channel() override;

  /// Channel current drain->source at the last computed point [A].
  double ids() const { return last_.id; }
  /// Small-signal parameters at the last computed point.
  const EkvResult& operating_point() const { return last_; }

  const MosGeometry& geometry() const { return geometry_; }
  const MosParams& params() const { return params_; }
  void set_mismatch(const MosMismatch& mm) {
    mismatch_ = mm;
    cache_valid_ = false;  // cached evaluation used the old parameters
  }

  /// Total gate capacitance estimate used by delay models [F].
  double gate_capacitance() const;

 private:
  class Channel;  // EnsembleChannel over the reserved stamp slots

  spice::NodeId d_, g_, s_, b_;
  MosParams params_;
  MosGeometry geometry_;
  double temperature_;
  MosMismatch mismatch_;

  // Constant small-signal gate capacitances (weak-inversion estimates).
  double cgs_ = 0.0, cgd_ = 0.0, cgb_ = 0.0;

  // Junction diode parameters (only when as/ad are set).
  double jn_sign_ = 1.0;  // +1 NMOS (bulk is anode), -1 PMOS
  double nvt_ = 0.0;
  double vcrit_s_ = 0.0, vcrit_d_ = 0.0;
  double vjs_last_ = 0.0, vjd_last_ = 0.0;

  int state_ = -1;  // [qgs,igs, qgd,igd, qgb,igb, qbs,ibs, qbd,ibd]

  mutable EkvResult last_;
  mutable double jgs_ = 0.0, jgd_ = 0.0;  // junction conductances (AC)
  mutable double cbs_ = 0.0, cbd_ = 0.0;  // junction capacitances (AC)

  // Reserved stamp slots (pattern pass).
  spice::MatrixSlot m_dg_ = 0, m_dd_ = 0, m_ds_ = 0, m_db_ = 0;
  spice::MatrixSlot m_sg_ = 0, m_sd_ = 0, m_ss_ = 0, m_sb_ = 0;
  spice::RhsSlot r_d_ = 0, r_s_ = 0;
  spice::NonlinearPattern jp_s_, jp_d_;            // bulk junctions
  spice::NonlinearPattern cp_gs_, cp_gd_, cp_gb_;  // gate capacitances

  // Bypass cache: terminal voltages of the last full evaluation plus the
  // voltage-dependent model quantities computed there. The integrator
  // companions are rebuilt from these on every load.
  struct JunctionCache {
    double ij = 0.0, gj = 0.0, qj = 0.0, cj = 0.0, v_ak = 0.0;
  };
  bool cache_valid_ = false;
  double vd_c_ = 0.0, vg_c_ = 0.0, vs_c_ = 0.0, vb_c_ = 0.0;
  double ieq_c_ = 0.0;
  JunctionCache jc_s_, jc_d_;
};

}  // namespace sscl::device
