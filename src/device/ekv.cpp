#include "device/ekv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"
#include "util/numeric.hpp"

namespace sscl::device {

double ekv_f(double v) {
  const double u = 0.5 * v;
  // ln(1 + e^u): use the asymptote for large u to avoid overflow; the
  // switch point keeps full double accuracy (e^-40 is below epsilon).
  const double l = u > 40.0 ? u : std::log1p(std::exp(u));
  return l * l;
}

double ekv_f_derivative(double v) {
  const double u = 0.5 * v;
  const double l = u > 40.0 ? u : std::log1p(std::exp(u));
  // dF/dv = l * sigmoid(u) where sigmoid = e^u/(1+e^u).
  const double sig = u > 40.0 ? 1.0 : (u < -40.0 ? std::exp(u)
                                                 : 1.0 / (1.0 + std::exp(-u)));
  return l * sig;
}

EkvResult ekv_evaluate(const MosParams& params, const MosGeometry& geometry,
                       const MosMismatch& mismatch, double vg, double vd,
                       double vs, double vb, double temperatureK) {
  const double ut = util::thermal_voltage(temperatureK);
  const double sign = params.is_nmos ? 1.0 : -1.0;

  // Bulk-referenced voltages, reflected for PMOS so the NMOS equations
  // apply unchanged.
  const double ug = sign * (vg - vb);
  const double us = sign * (vs - vb);
  const double ud = sign * (vd - vb);

  const double vt = params.vt0 + mismatch.dvt;
  const double beta =
      params.kp * (1.0 + mismatch.dbeta_rel) * geometry.w / geometry.l;
  const double ispec = 2.0 * params.n * beta * ut * ut;

  const double vp = (ug - vt) / params.n;
  const double xf = (vp - us) / ut;
  const double xr = (vp - ud) / ut;

  const double ff = ekv_f(xf);
  const double fr = ekv_f(xr);
  const double dff = ekv_f_derivative(xf);
  const double dfr = ekv_f_derivative(xr);

  // Channel-length modulation, symmetric, smooth and BOUNDED in
  // (ud - us): 1 + lambda*vds for small vds, saturating at 1 +- 2*lambda
  // so it can never go negative and create unphysical negative
  // conductance far outside the normal operating region.
  const double dv = ud - us;
  const double th = std::tanh(0.5 * dv);
  const double clm = 1.0 + params.lambda * 2.0 * th;
  const double dclm = params.lambda * (1.0 - th * th);  // d clm / d dv

  const double i_core = ispec * (ff - fr);
  const double i = i_core * clm;

  // Partials in the reflected frame (per unit of ug / ud / us).
  const double p_g = ispec * clm * (dff - dfr) / (params.n * ut);
  const double p_d = ispec * clm * dfr / ut + i_core * dclm;
  const double p_s_neg = ispec * clm * dff / ut + i_core * dclm;

  EkvResult out;
  // Reflection: both the current and the voltages flip for PMOS, so the
  // drain->source terminal current is sign * i, and each terminal
  // partial d(sign*i)/d(v) = sign * p * sign = p.
  out.id = sign * i;
  out.gm = p_g;
  out.gds = p_d;
  out.gms = p_s_neg;
  out.gmb = -(p_g - p_s_neg + p_d);
  out.i_f = ff;
  out.i_r = fr;
  out.ispec = ispec;
  return out;
}

double ekv_vgs_for_current(const MosParams& params, const MosGeometry& geometry,
                           double id, double vds, double temperatureK) {
  if (id <= 0) throw std::invalid_argument("ekv_vgs_for_current: id <= 0");
  const MosMismatch no_mismatch;
  auto current_at = [&](double vgs) {
    // NMOS frame with source = bulk = 0.
    const EkvResult r = ekv_evaluate(params, geometry, no_mismatch, vgs, vds,
                                     0.0, 0.0, temperatureK);
    return std::fabs(r.id);
  };
  // Bracket: weak inversion lets VGS go far below VT for tiny currents.
  double lo = -1.5, hi = 3.0;
  const auto root = util::bisect(
      [&](double vgs) { return std::log(std::max(current_at(vgs), 1e-30)) -
                               std::log(id); },
      lo, hi, 1e-9);
  if (!root) {
    throw std::runtime_error("ekv_vgs_for_current: no bracket for requested id");
  }
  return *root;
}

double subthreshold_swing(const MosParams& params, double temperatureK) {
  return params.n * util::thermal_voltage(temperatureK) * std::log(10.0);
}

EkvIntervalResult ekv_evaluate_interval(
    const MosParams& params, const MosGeometry& geometry,
    const util::Interval& vg, const util::Interval& vd,
    const util::Interval& vs, const util::Interval& vb,
    const util::Interval& tK, double cardTemperatureK,
    const util::Interval* clm_dv_hint) {
  using util::Interval;
  if (vg.is_empty() || vd.is_empty() || vs.is_empty() || vb.is_empty() ||
      tK.is_empty()) {
    return EkvIntervalResult{};  // all-empty: the image of an empty box
  }
  const double sign = params.is_nmos ? 1.0 : -1.0;
  const Interval ug = (vg - vb) * sign;
  const Interval us = (vs - vb) * sign;
  const Interval ud = (vd - vb) * sign;
  const Interval dv = clm_dv_hint ? (*clm_dv_hint * sign) : (ud - us);
  return ekv_evaluate_interval_refs(params, geometry, ug, ud, us, dv, tK,
                                    cardTemperatureK);
}

EkvIntervalResult ekv_evaluate_interval_refs(
    const MosParams& params, const MosGeometry& geometry,
    const util::Interval& ug, const util::Interval& ud,
    const util::Interval& us, const util::Interval& clm_dv,
    const util::Interval& tK, double cardTemperatureK) {
  using util::Interval;
  EkvIntervalResult out;
  if (ug.is_empty() || ud.is_empty() || us.is_empty() || tK.is_empty()) {
    return out;  // all-empty: the image of an empty box
  }

  // Temperature dependences mirror Process::at_temperature so the
  // interval card brackets the scalar card re-derived at any T in the
  // box: VT falls 1 mV/K, KP scales (T/Tcard)^-1.5, UT = kT/q.
  const double tref = cardTemperatureK;
  const Interval ut =
      tK.map_increasing([](double t) { return util::thermal_voltage(t); });
  const Interval vt = tK.map_decreasing(
      [&](double t) { return params.vt0 - 1.0e-3 * (t - tref); });
  const Interval kp = tK.map_decreasing(
      [&](double t) { return params.kp * std::pow(t / tref, -1.5); });

  const double sign = params.is_nmos ? 1.0 : -1.0;

  const Interval beta = kp * (geometry.w / geometry.l);
  const Interval ispec = (beta * (2.0 * params.n)) * (ut * ut);

  const Interval vp = (ug - vt) * (1.0 / params.n);
  const Interval xf = (vp - us) / ut;
  const Interval xr = (vp - ud) / ut;
  const Interval ff = xf.map_increasing(ekv_f);
  const Interval fr = xr.map_increasing(ekv_f);

  const Interval th =
      clm_dv.map_increasing([](double v) { return std::tanh(0.5 * v); });
  const Interval clm = th * (2.0 * params.lambda) + 1.0;

  const Interval i = (ispec * (ff - fr)) * clm;

  out.id = i * sign;
  out.i_f = ff;
  out.i_r = fr;
  out.ispec = ispec;
  out.vdsat = ut * (util::interval_sqrt(ff) * 2.0 + 4.0);
  out.ut = ut;
  out.vp = vp;
  return out;
}

}  // namespace sscl::device
