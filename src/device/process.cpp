#include "device/mos_params.hpp"

#include <cmath>

namespace sscl::device {

Process Process::c180() {
  Process p;

  // NMOS, typical. kp = mu_n * Cox with mu_n ~ 350 cm^2/Vs, tox ~ 4 nm.
  p.nmos.is_nmos = true;
  p.nmos.vt0 = 0.45;
  p.nmos.n = 1.35;
  p.nmos.kp = 300e-6;
  p.nmos.lambda = 0.02;
  p.nmos.cox = 8.5e-3;
  p.nmos.cov = 3.0e-10;
  p.nmos.avt = 3.5e-9;
  p.nmos.abeta = 1.0e-8;

  // PMOS, typical (|VT| and the hole-mobility penalty).
  p.pmos = p.nmos;
  p.pmos.is_nmos = false;
  p.pmos.vt0 = 0.42;
  p.pmos.kp = 80e-6;
  p.pmos.avt = 4.0e-9;

  // High-VT NMOS used for tail current sources: the elevated threshold
  // pushes the off-leakage floor orders of magnitude below the pA bias
  // currents the platform runs at (paper Section II-A).
  p.nmos_hvt = p.nmos;
  p.nmos_hvt.vt0 = 0.62;

  // Thick-oxide NMOS: smaller kp and Cox, negligible gate leakage (gate
  // leakage is identically zero in this model; the card exists so designs
  // can express the paper's device-selection freedom).
  p.nmos_thick = p.nmos;
  p.nmos_thick.kp = 180e-6;
  p.nmos_thick.cox = 5.0e-3;
  p.nmos_thick.vt0 = 0.55;

  p.temperature = 300.15;
  return p;
}

Process Process::c180_fast() {
  Process p = c180();
  // Fast corner: lower VT, higher mobility.
  for (MosParams* m : {&p.nmos, &p.pmos, &p.nmos_hvt, &p.nmos_thick}) {
    m->vt0 -= 0.06;
    m->kp *= 1.15;
  }
  return p;
}

Process Process::c180_slow() {
  Process p = c180();
  for (MosParams* m : {&p.nmos, &p.pmos, &p.nmos_hvt, &p.nmos_thick}) {
    m->vt0 += 0.06;
    m->kp *= 0.85;
  }
  return p;
}

Process Process::at_temperature(double kelvin) const {
  Process p = *this;
  const double t0 = p.temperature;
  p.temperature = kelvin;
  const double dvt = -1.0e-3 * (kelvin - t0);        // ~-1 mV/K
  const double kp_scale = std::pow(kelvin / t0, -1.5);  // mobility
  for (MosParams* m : {&p.nmos, &p.pmos, &p.nmos_hvt, &p.nmos_thick}) {
    m->vt0 += dvt;
    m->kp *= kp_scale;
  }
  return p;
}

MismatchSigmas mismatch_sigmas(const MosParams& params,
                               const MosGeometry& geometry) {
  MismatchSigmas s;
  const double sqrt_wl = std::sqrt(geometry.w * geometry.l);
  s.sigma_vt = params.avt / sqrt_wl;
  s.sigma_beta_rel = params.abeta / sqrt_wl;
  return s;
}

}  // namespace sscl::device
