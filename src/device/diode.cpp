#include "device/diode.hpp"

#include <cmath>

#include "util/constants.hpp"

namespace sscl::device {

using spice::AnalysisMode;

void junction_current(double v, double is, double nvt, double& i, double& g) {
  constexpr double kMaxExp = 80.0;
  const double u = v / nvt;
  if (u <= kMaxExp) {
    const double e = std::exp(u);
    i = is * (e - 1.0);
    g = is * e / nvt;
  } else {
    // Linear continuation beyond the clamp keeps i and g continuous.
    const double e = std::exp(kMaxExp);
    i = is * (e * (1.0 + (u - kMaxExp)) - 1.0);
    g = is * e / nvt;
  }
}

void junction_charge(double v, double cj0, double mj, double pb, double fc,
                     double& q, double& c) {
  if (cj0 <= 0) {
    q = 0;
    c = 0;
    return;
  }
  const double vk = fc * pb;
  if (v < vk) {
    const double arg = 1.0 - v / pb;
    const double s = std::pow(arg, -mj);
    c = cj0 * s;
    q = pb * cj0 * (1.0 - arg * s) / (1.0 - mj);
  } else {
    // Linearised beyond fc*pb, continuous in q and c.
    const double f1 = pb * cj0 * (1.0 - std::pow(1.0 - fc, 1.0 - mj)) / (1.0 - mj);
    const double f2 = std::pow(1.0 - fc, -(1.0 + mj));
    const double f3 = 1.0 - fc * (1.0 + mj);
    c = cj0 * f2 * (f3 + mj * v / pb);
    q = f1 + cj0 * f2 * (f3 * (v - vk) + 0.5 * mj * (v * v - vk * vk) / pb);
  }
}

double pnjlim(double vnew, double vold, double nvt, double vcrit,
              bool* limited) {
  if (vnew > vcrit && std::fabs(vnew - vold) > nvt + nvt) {
    if (vold > 0) {
      const double arg = 1.0 + (vnew - vold) / nvt;
      if (arg > 0) {
        vnew = vold + nvt * std::log(arg);
      } else {
        vnew = vcrit;
      }
    } else {
      vnew = nvt * std::log(vnew / nvt);
    }
    if (limited) *limited = true;
  }
  return vnew;
}

Diode::Diode(std::string name, spice::NodeId anode, spice::NodeId cathode,
             DiodeParams params, double area, double temperatureK)
    : Device(std::move(name)),
      anode_(anode),
      cathode_(cathode),
      params_(params),
      area_(area),
      ut_(params.n * util::thermal_voltage(temperatureK)) {
  const double is_eff = params_.is * area_;
  vcrit_ = ut_ * std::log(ut_ / (std::sqrt(2.0) * std::max(is_eff, 1e-300)));
}

void Diode::setup(spice::SetupContext& ctx) { state_ = ctx.alloc_state(2); }

void Diode::reserve(spice::PatternContext& ctx) {
  np_ = ctx.nonlinear_current(anode_, cathode_);
}

void Diode::load(spice::LoadContext& ctx) {
  const double v_raw = ctx.v(anode_) - ctx.v(cathode_);
  const bool init = ctx.mode() == AnalysisMode::kInitState;

  // Bypass: if the junction voltage moved less than the Newton tolerance
  // since the last full evaluation, reuse the cached i/g/q/c (and skip
  // pnjlim, whose only job is steering large steps).
  const bool bypass = !init && ctx.bypass_enabled() && cache_valid_ &&
                      ctx.within_bypass_tol(v_raw, v_raw_cache_);
  if (bypass) {
    ctx.note_bypass();
  } else {
    ctx.note_eval();
    double v = v_raw;
    if (!init) {
      bool limited = false;
      v = pnjlim(v, v_last_, ut_, vcrit_, &limited);
      if (limited) ctx.set_not_converged();
      v_last_ = v;
    }
    const double is_eff = params_.is * area_;
    const double cj_eff = params_.cj0 * area_;
    double i = 0, g = 0;
    junction_current(v, is_eff, ut_, i, g);
    double q = 0, c = 0;
    junction_charge(v, cj_eff, params_.mj, params_.pb, params_.fc, q, c);
    last_i_ = i;
    last_g_ = g;
    last_c_ = c;
    last_q_ = q;
    // The kInitState evaluation skips limiting, so only non-init
    // evaluations seed the bypass cache.
    v_raw_cache_ = v_raw;
    cache_valid_ = !init;
  }

  switch (ctx.mode()) {
    case AnalysisMode::kDcOp:
      ctx.stamp_nonlinear_current(np_, last_i_, last_g_, v_last_);
      return;
    case AnalysisMode::kInitState:
      ctx.set_state(state_, last_q_);
      ctx.set_state(state_ + 1, 0.0);
      return;
    case AnalysisMode::kTransient: {
      // The companion current is re-integrated every load: the previous
      // state and a0 change per timestep even when the charge is cached.
      const double ic = ctx.integrate_charge(state_, last_q_);
      const double geq = ctx.integ_a0() * last_c_;
      ctx.stamp_nonlinear_current(np_, last_i_ + ic, last_g_ + geq, v_last_);
      return;
    }
  }
}

void Diode::load_ac(spice::AcContext& ctx) const {
  ctx.stamp_admittance(anode_, cathode_, {last_g_, ctx.omega() * last_c_});
}

void Diode::add_noise(spice::NoiseContext& ctx) const {
  // Shot noise of the junction current: S_i = 2 q |I|.
  constexpr double kQ = 1.602176634e-19;
  ctx.add(anode_, cathode_, 2.0 * kQ * std::fabs(last_i_),
          "shot(" + name() + ")");
}

bool Diode::describe(spice::DeviceInfo& info) const {
  info.kind = "diode";
  info.terminals = {{"anode", anode_}, {"cathode", cathode_}};
  info.edges = {{anode_, cathode_, spice::DcCoupling::kConductive, 0.0}};
  return true;
}

}  // namespace sscl::device
