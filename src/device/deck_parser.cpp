#include "device/deck_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "device/diode.hpp"
#include "device/mosfet.hpp"
#include "spice/elements.hpp"
#include "util/units.hpp"

namespace sscl::device {

namespace {

using spice::Circuit;
using spice::NodeId;
using spice::SourceSpec;

std::string lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Split into whitespace tokens; '(' ')' ',' '=' become separators but
/// '=' is kept as its own token so "W=2u", "W = 2u" and "W =2u" agree.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',') {
      flush();
    } else if (c == '=') {
      flush();
      out.push_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

/// Logical lines: comments stripped, '+' continuations joined.
struct LogicalLine {
  int number;  // 1-based line number of the first physical line
  std::string text;
};

std::vector<LogicalLine> logical_lines(const std::string& text) {
  std::vector<LogicalLine> lines;
  std::istringstream in(text);
  std::string phys;
  int n = 0;
  while (std::getline(in, phys)) {
    ++n;
    // Strip end-of-line comments ('$' or ';').
    for (char marker : {'$', ';'}) {
      const auto pos = phys.find(marker);
      if (pos != std::string::npos) phys.erase(pos);
    }
    // Trim.
    const auto b = phys.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = phys.find_last_not_of(" \t\r");
    phys = phys.substr(b, e - b + 1);
    if (phys.empty() || phys[0] == '*') continue;
    if (phys[0] == '+') {
      if (lines.empty()) continue;
      lines.back().text += " " + phys.substr(1);
    } else {
      lines.push_back({n, phys});
    }
  }
  return lines;
}

double parse_number(const std::string& tok, int line) {
  const auto v = util::parse_si(tok);
  if (!v) throw DeckError(line, "bad number '" + tok + "'");
  return *v;
}

/// key=value pairs from a token stream starting at index i.
std::map<std::string, double> parse_params(
    const std::vector<std::string>& tok, std::size_t i, int line) {
  std::map<std::string, double> out;
  while (i < tok.size()) {
    if (i + 2 >= tok.size() + 1 && tok[i] == "=") {
      throw DeckError(line, "dangling '='");
    }
    if (i + 2 < tok.size() + 1 && i + 1 < tok.size() && tok[i + 1] == "=") {
      if (i + 2 >= tok.size()) throw DeckError(line, "missing value after '='");
      out[lowercase(tok[i])] = parse_number(tok[i + 2], line);
      i += 3;
    } else {
      throw DeckError(line, "expected key=value, got '" + tok[i] + "'");
    }
  }
  return out;
}

struct ModelCard {
  enum class Kind { kNmos, kPmos, kDiode } kind = Kind::kNmos;
  MosParams mos;
  DiodeParams diode;
};

struct Subckt {
  std::vector<std::string> ports;
  std::vector<LogicalLine> body;
};

struct ParserState {
  const Process& process;
  Circuit* circuit;
  std::map<std::string, ModelCard> models;
  std::map<std::string, Subckt> subckts;
  std::vector<AnalysisCard> analyses;
  int x_depth = 0;
};

ModelCard builtin_model(const std::string& name, const Process& process) {
  ModelCard m;
  if (name == "nmos") {
    m.mos = process.nmos;
  } else if (name == "pmos") {
    m.kind = ModelCard::Kind::kPmos;
    m.mos = process.pmos;
  } else if (name == "nmos_hvt") {
    m.mos = process.nmos_hvt;
  } else if (name == "nmos_thick") {
    m.mos = process.nmos_thick;
  } else if (name == "d") {
    m.kind = ModelCard::Kind::kDiode;
  } else {
    m.mos.vt0 = -1;  // sentinel: unknown
  }
  return m;
}

const ModelCard& find_model(const ParserState& st, const std::string& name,
                            int line) {
  static std::map<std::string, ModelCard> builtin_cache;
  const std::string key = lowercase(name);
  auto it = st.models.find(key);
  if (it != st.models.end()) return it->second;
  auto [bit, inserted] = builtin_cache.try_emplace(key, builtin_model(key, st.process));
  if (bit->second.mos.vt0 < 0 && bit->second.kind != ModelCard::Kind::kDiode) {
    throw DeckError(line, "unknown model '" + name + "'");
  }
  return bit->second;
}

/// Source spec from the value tokens of a V/I element.
SourceSpec parse_source(const std::vector<std::string>& tok, std::size_t i,
                        int line) {
  SourceSpec spec = SourceSpec::dc(0.0);
  bool have_main = false;
  double ac_mag = 0.0, ac_phase = 0.0;
  bool have_ac = false;

  while (i < tok.size()) {
    const std::string kw = lowercase(tok[i]);
    if (kw == "dc") {
      if (i + 1 >= tok.size()) throw DeckError(line, "DC needs a value");
      spec = SourceSpec::dc(parse_number(tok[i + 1], line));
      have_main = true;
      i += 2;
    } else if (kw == "ac") {
      if (i + 1 >= tok.size()) throw DeckError(line, "AC needs a magnitude");
      ac_mag = parse_number(tok[i + 1], line);
      i += 2;
      if (i < tok.size() && util::parse_si(tok[i])) {
        ac_phase = parse_number(tok[i], line);
        ++i;
      }
      have_ac = true;
    } else if (kw == "pulse") {
      std::vector<double> a;
      for (++i; i < tok.size() && util::parse_si(tok[i]); ++i) {
        a.push_back(parse_number(tok[i], line));
      }
      if (a.size() < 6) throw DeckError(line, "PULSE needs >= 6 values");
      spec = SourceSpec::pulse(a[0], a[1], a[2], a[3], a[4], a[5],
                               a.size() > 6 ? a[6] : 0.0);
      have_main = true;
    } else if (kw == "sin") {
      std::vector<double> a;
      for (++i; i < tok.size() && util::parse_si(tok[i]); ++i) {
        a.push_back(parse_number(tok[i], line));
      }
      if (a.size() < 3) throw DeckError(line, "SIN needs >= 3 values");
      spec = SourceSpec::sine(a[0], a[1], a[2], a.size() > 3 ? a[3] : 0.0,
                              a.size() > 4 ? a[4] : 0.0);
      have_main = true;
    } else if (kw == "pwl") {
      std::vector<double> a;
      for (++i; i < tok.size() && util::parse_si(tok[i]); ++i) {
        a.push_back(parse_number(tok[i], line));
      }
      if (a.size() < 4 || a.size() % 2 != 0) {
        throw DeckError(line, "PWL needs an even number (>= 4) of values");
      }
      std::vector<double> ts, vs;
      for (std::size_t k = 0; k < a.size(); k += 2) {
        ts.push_back(a[k]);
        vs.push_back(a[k + 1]);
      }
      spec = SourceSpec::pwl(std::move(ts), std::move(vs));
      have_main = true;
    } else if (util::parse_si(tok[i]) && !have_main) {
      spec = SourceSpec::dc(parse_number(tok[i], line));
      have_main = true;
      ++i;
    } else {
      throw DeckError(line, "unexpected token '" + tok[i] + "' in source");
    }
  }
  if (have_ac) spec.with_ac(ac_mag, ac_phase);
  return spec;
}

void parse_element(ParserState& st, const LogicalLine& ll,
                   const std::string& prefix,
                   const std::map<std::string, std::string>& port_map);

/// Map a node name through a subckt port map and prefix.
std::string map_node(const std::string& name, const std::string& prefix,
                     const std::map<std::string, std::string>& port_map) {
  const std::string key = lowercase(name);
  // Every Circuit ground alias must stay global, or subckt expansion
  // would prefix it into a phantom floating local node ("x1.vss!").
  if (spice::is_ground_name(key)) return "0";
  const auto it = port_map.find(key);
  if (it != port_map.end()) return it->second;
  return prefix.empty() ? key : prefix + "." + key;
}

void expand_subckt(ParserState& st, const std::vector<std::string>& tok,
                   int line, const std::string& outer_prefix,
                   const std::map<std::string, std::string>& outer_map) {
  if (++st.x_depth > 16) throw DeckError(line, "subckt nesting too deep");
  // Xname node1 ... nodeN subname
  const std::string sub_name = lowercase(tok.back());
  const auto it = st.subckts.find(sub_name);
  if (it == st.subckts.end()) {
    throw DeckError(line, "unknown subckt '" + tok.back() + "'");
  }
  const Subckt& sub = it->second;
  const std::size_t n_nodes = tok.size() - 2;
  if (n_nodes != sub.ports.size()) {
    throw DeckError(line, "subckt '" + sub_name + "' expects " +
                              std::to_string(sub.ports.size()) + " nodes");
  }
  const std::string inst = lowercase(tok[0]);
  const std::string prefix =
      outer_prefix.empty() ? inst : outer_prefix + "." + inst;
  std::map<std::string, std::string> port_map;
  for (std::size_t k = 0; k < n_nodes; ++k) {
    port_map[sub.ports[k]] = map_node(tok[1 + k], outer_prefix, outer_map);
  }
  for (const LogicalLine& body_line : sub.body) {
    parse_element(st, body_line, prefix, port_map);
  }
  --st.x_depth;
}

void parse_element(ParserState& st, const LogicalLine& ll,
                   const std::string& prefix,
                   const std::map<std::string, std::string>& port_map) {
  const auto tok = tokenize(ll.text);
  if (tok.empty()) return;
  const int line = ll.number;
  Circuit& c = *st.circuit;
  const char kind = static_cast<char>(std::tolower(tok[0][0]));
  const std::string name =
      prefix.empty() ? tok[0] : prefix + "." + lowercase(tok[0]);

  auto node = [&](std::size_t i) -> NodeId {
    if (i >= tok.size()) throw DeckError(line, "missing node");
    return c.node(map_node(tok[i], prefix, port_map));
  };

  switch (kind) {
    case 'r': {
      if (tok.size() < 4) throw DeckError(line, "R needs 2 nodes + value");
      c.add<spice::Resistor>(name, node(1), node(2), parse_number(tok[3], line));
      return;
    }
    case 'c': {
      if (tok.size() < 4) throw DeckError(line, "C needs 2 nodes + value");
      c.add<spice::Capacitor>(name, node(1), node(2),
                              parse_number(tok[3], line));
      return;
    }
    case 'l': {
      if (tok.size() < 4) throw DeckError(line, "L needs 2 nodes + value");
      c.add<spice::Inductor>(name, node(1), node(2),
                             parse_number(tok[3], line));
      return;
    }
    case 'v': {
      if (tok.size() < 4) throw DeckError(line, "V needs 2 nodes + value");
      c.add<spice::VoltageSource>(name, node(1), node(2),
                                  parse_source(tok, 3, line));
      return;
    }
    case 'i': {
      if (tok.size() < 4) throw DeckError(line, "I needs 2 nodes + value");
      c.add<spice::CurrentSource>(name, node(1), node(2),
                                  parse_source(tok, 3, line));
      return;
    }
    case 'e': {
      if (tok.size() < 6) throw DeckError(line, "E needs 4 nodes + gain");
      c.add<spice::Vcvs>(name, node(1), node(2), node(3), node(4),
                         parse_number(tok[5], line));
      return;
    }
    case 'g': {
      if (tok.size() < 6) throw DeckError(line, "G needs 4 nodes + gm");
      c.add<spice::Vccs>(name, node(1), node(2), node(3), node(4),
                         parse_number(tok[5], line));
      return;
    }
    case 'd': {
      if (tok.size() < 4) throw DeckError(line, "D needs 2 nodes + model");
      const ModelCard& m = find_model(st, tok[3], line);
      if (m.kind != ModelCard::Kind::kDiode) {
        throw DeckError(line, "'" + tok[3] + "' is not a diode model");
      }
      double area = 1.0;
      if (tok.size() > 4 && util::parse_si(tok[4])) {
        area = parse_number(tok[4], line);
      }
      c.add<Diode>(name, node(1), node(2), m.diode, area,
                   st.process.temperature);
      return;
    }
    case 'm': {
      if (tok.size() < 6) throw DeckError(line, "M needs 4 nodes + model");
      const ModelCard& m = find_model(st, tok[5], line);
      if (m.kind == ModelCard::Kind::kDiode) {
        throw DeckError(line, "'" + tok[5] + "' is not a MOS model");
      }
      const auto params = parse_params(tok, 6, line);
      MosGeometry geo;
      geo.w = params.count("w") ? params.at("w") : 1e-6;
      geo.l = params.count("l") ? params.at("l") : 1e-6;
      geo.as = params.count("as") ? params.at("as") : 0.0;
      geo.ad = params.count("ad") ? params.at("ad") : 0.0;
      c.add<Mosfet>(name, node(1), node(2), node(3), node(4), m.mos, geo,
                    st.process.temperature);
      return;
    }
    case 'x': {
      if (tok.size() < 3) throw DeckError(line, "X needs nodes + subckt name");
      expand_subckt(st, tok, line, prefix, port_map);
      return;
    }
    default:
      throw DeckError(line, std::string("unsupported element '") + tok[0] + "'");
  }
}

void parse_model_card(ParserState& st, const std::vector<std::string>& tok,
                      int line) {
  // .model name NMOS|PMOS|D key=value...
  if (tok.size() < 3) throw DeckError(line, ".model needs a name and a type");
  const std::string name = lowercase(tok[1]);
  const std::string type = lowercase(tok[2]);
  ModelCard m;
  if (type == "nmos" || type == "pmos") {
    m.kind = type == "nmos" ? ModelCard::Kind::kNmos : ModelCard::Kind::kPmos;
    m.mos = type == "nmos" ? st.process.nmos : st.process.pmos;
    const auto params = parse_params(tok, 3, line);
    for (const auto& [k, v] : params) {
      if (k == "vt0" || k == "vto") {
        m.mos.vt0 = v;
      } else if (k == "kp") {
        m.mos.kp = v;
      } else if (k == "n") {
        m.mos.n = v;
      } else if (k == "lambda") {
        m.mos.lambda = v;
      } else if (k == "cox") {
        m.mos.cox = v;
      } else {
        throw DeckError(line, "unknown MOS model parameter '" + k + "'");
      }
    }
    m.mos.is_nmos = type == "nmos";
  } else if (type == "d") {
    m.kind = ModelCard::Kind::kDiode;
    const auto params = parse_params(tok, 3, line);
    for (const auto& [k, v] : params) {
      if (k == "is") {
        m.diode.is = v;
      } else if (k == "n") {
        m.diode.n = v;
      } else if (k == "cj0" || k == "cjo") {
        m.diode.cj0 = v;
      } else {
        throw DeckError(line, "unknown diode model parameter '" + k + "'");
      }
    }
  } else {
    throw DeckError(line, "unknown model type '" + tok[2] + "'");
  }
  st.models[name] = m;
}

void parse_analysis_card(ParserState& st, const std::vector<std::string>& tok,
                         int line) {
  const std::string card = lowercase(tok[0]);
  AnalysisCard a;
  if (card == ".op") {
    a.kind = AnalysisCard::Kind::kOp;
  } else if (card == ".tran") {
    // .tran [tstep] tstop  (tstep accepted and ignored: auto-stepping)
    if (tok.size() < 2) throw DeckError(line, ".tran needs tstop");
    a.kind = AnalysisCard::Kind::kTran;
    a.tstop = parse_number(tok.back(), line);
  } else if (card == ".ac") {
    // .ac dec N fstart fstop
    if (tok.size() < 5 || lowercase(tok[1]) != "dec") {
      throw DeckError(line, ".ac expects: .ac dec N fstart fstop");
    }
    a.kind = AnalysisCard::Kind::kAc;
    a.points_per_decade = static_cast<int>(parse_number(tok[2], line));
    a.f_start = parse_number(tok[3], line);
    a.f_stop = parse_number(tok[4], line);
  } else if (card == ".dc") {
    if (tok.size() < 5) throw DeckError(line, ".dc source start stop step");
    a.kind = AnalysisCard::Kind::kDc;
    a.sweep_source = tok[1];
    a.sweep_start = parse_number(tok[2], line);
    a.sweep_stop = parse_number(tok[3], line);
    a.sweep_step = parse_number(tok[4], line);
  } else {
    throw DeckError(line, "unsupported card '" + tok[0] + "'");
  }
  st.analyses.push_back(a);
}

}  // namespace

ParsedDeck parse_deck(const std::string& text, const Process& process) {
  ParsedDeck deck;
  deck.circuit = std::make_unique<Circuit>();

  // SPICE convention: the first physical line is ALWAYS the title.
  std::string body = text;
  {
    const auto nl = body.find('\n');
    deck.title = body.substr(0, nl == std::string::npos ? body.size() : nl);
    body = nl == std::string::npos ? std::string() : body.substr(nl + 1);
    // Trim the title.
    const auto b = deck.title.find_first_not_of(" \t\r");
    const auto e = deck.title.find_last_not_of(" \t\r");
    deck.title = b == std::string::npos ? std::string()
                                        : deck.title.substr(b, e - b + 1);
  }

  auto lines = logical_lines(body);
  if (lines.empty()) throw DeckError(0, "empty deck");
  // Line numbers in `lines` are relative to the body; shift past title.
  for (auto& ll : lines) ++ll.number;

  ParserState st{process, deck.circuit.get(), {}, {}, {}, 0};

  // Pass 1: collect .model and .subckt definitions.
  std::vector<LogicalLine> top_level;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto tok = tokenize(lines[i].text);
    if (tok.empty()) continue;
    const std::string head = lowercase(tok[0]);
    if (head == ".model") {
      parse_model_card(st, tok, lines[i].number);
    } else if (head == ".subckt") {
      if (tok.size() < 2) throw DeckError(lines[i].number, ".subckt needs a name");
      Subckt sub;
      for (std::size_t k = 2; k < tok.size(); ++k) {
        sub.ports.push_back(lowercase(tok[k]));
      }
      const std::string sub_name = lowercase(tok[1]);
      ++i;
      for (; i < lines.size(); ++i) {
        if (lowercase(tokenize(lines[i].text)[0]) == ".ends") break;
        sub.body.push_back(lines[i]);
      }
      if (i == lines.size()) throw DeckError(lines[i - 1].number, "missing .ends");
      st.subckts[sub_name] = std::move(sub);
    } else if (head == ".end") {
      break;
    } else {
      top_level.push_back(lines[i]);
    }
  }

  // Pass 2: elements and analysis cards.
  for (const LogicalLine& ll : top_level) {
    if (ll.text[0] == '.') {
      parse_analysis_card(st, tokenize(ll.text), ll.number);
    } else {
      parse_element(st, ll, "", {});
    }
  }

  deck.analyses = std::move(st.analyses);
  return deck;
}

}  // namespace sscl::device
