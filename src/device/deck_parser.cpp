#include "device/deck_parser.hpp"

#include "netlist/netlist.hpp"

namespace sscl::device {

ParsedDeck parse_deck(const std::string& text, const Process& process) {
  netlist::ParseOptions options;
  options.process = process;
  // The legacy contract: unknown dot-cards are hard errors, subckt
  // nesting stops at the historical 16 levels and .include is not
  // resolved (this API never touched the filesystem).
  options.strict = true;
  options.max_subckt_depth = 16;
  try {
    netlist::Deck deck = netlist::parse_netlist(text, options);
    ParsedDeck out;
    out.title = std::move(deck.title);
    out.circuit = std::move(deck.circuit);
    out.analyses = std::move(deck.analyses);
    return out;
  } catch (const netlist::NetlistError& e) {
    throw DeckError(e.loc().line, e.message());
  }
}

}  // namespace sscl::device
