#pragma once

/// \file deck_parser.hpp
/// Legacy SPICE deck parsing API, now a thin shim over the staged
/// netlist front-end (src/netlist): lexer -> card AST -> expression
/// evaluation -> hierarchical elaboration. Kept so existing callers and
/// the committed lint baselines stay source- and behaviour-compatible:
///
///   * STSCL inverter cell
///   Vdd vdd 0 1.0
///   Ib  vdd vbn 1n
///   MB  vbn vbn 0 0 nmos_hvt W=2u L=1u
///   .model mynmos NMOS (VT0=0.45 KP=300u N=1.35 LAMBDA=0.02)
///   Vin in 0 PULSE(0 1 1u 10n 10n 5u)
///   .subckt divider top mid bot
///   R1 top mid 1k
///   R2 mid bot 1k
///   .ends
///   X1 vdd out 0 divider
///   .tran 10u
///   .end
///
/// parse_deck runs the pipeline in STRICT mode (unknown cards are
/// errors, the historical 16-level subckt nesting limit applies, no
/// .include resolution) and converts NetlistError to DeckError. New
/// code should call netlist::parse_netlist directly: it exposes .param
/// expressions, subckt parameters, .include, .measure, .global, .temp,
/// .ic and accept-and-warn handling of foreign cards.

#include <memory>
#include <string>
#include <vector>

#include "device/mos_params.hpp"
#include "netlist/cards.hpp"
#include "spice/circuit.hpp"

namespace sscl::device {

/// An analysis request found in the deck (shared with the netlist
/// front-end; .tran additionally records tstep there).
using AnalysisCard = netlist::AnalysisCard;

struct ParsedDeck {
  std::string title;
  std::unique_ptr<spice::Circuit> circuit;
  std::vector<AnalysisCard> analyses;
};

/// Thrown with a line number and message on malformed decks.
class DeckError : public std::runtime_error {
 public:
  DeckError(int line, const std::string& message)
      : std::runtime_error("deck line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a deck. \p process supplies the built-in MOS model cards.
ParsedDeck parse_deck(const std::string& text,
                      const Process& process = Process::c180());

}  // namespace sscl::device
