#pragma once

/// \file deck_parser.hpp
/// SPICE-style netlist deck parser. Builds a spice::Circuit (with EKV
/// MOSFETs and diodes from this library's device models) from classic
/// deck text:
///
///   * STSCL inverter cell
///   Vdd vdd 0 1.0
///   Ib  vdd vbn 1n
///   MB  vbn vbn 0 0 nmos_hvt W=2u L=1u
///   .model mynmos NMOS (VT0=0.45 KP=300u N=1.35 LAMBDA=0.02)
///   R1  a b 100k
///   C1  b 0 10p
///   Vin in 0 PULSE(0 1 1u 10n 10n 5u)
///   .subckt divider top mid bot
///   R1 top mid 1k
///   R2 mid bot 1k
///   .ends
///   X1 vdd out 0 divider
///   .tran 10u
///   .end
///
/// Supported elements: R, C, L, V, I, E (VCVS), G (VCCS), D, M, X.
/// Supported cards: .model (NMOS/PMOS/D), .subckt/.ends, .op, .dc,
/// .tran, .ac, .end. Numbers use engineering suffixes (util::parse_si).
/// Built-in model names: nmos, pmos, nmos_hvt, nmos_thick (the process
/// cards of device::Process), d (default diode).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/mos_params.hpp"
#include "spice/circuit.hpp"

namespace sscl::device {

/// An analysis request found in the deck.
struct AnalysisCard {
  enum class Kind { kOp, kTran, kAc, kDc };
  Kind kind = Kind::kOp;
  // .tran tstop  |  .ac points_per_decade f_start f_stop
  // .dc source start stop step
  double tstop = 0.0;
  double f_start = 0.0, f_stop = 0.0;
  int points_per_decade = 10;
  std::string sweep_source;
  double sweep_start = 0.0, sweep_stop = 0.0, sweep_step = 0.0;
};

struct ParsedDeck {
  std::string title;
  std::unique_ptr<spice::Circuit> circuit;
  std::vector<AnalysisCard> analyses;
};

/// Thrown with a line number and message on malformed decks.
class DeckError : public std::runtime_error {
 public:
  DeckError(int line, const std::string& message)
      : std::runtime_error("deck line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a deck. \p process supplies the built-in MOS model cards.
ParsedDeck parse_deck(const std::string& text,
                      const Process& process = Process::c180());

}  // namespace sscl::device
