#pragma once

/// \file diode.hpp
/// PN junction diode with exponential conduction (limited for Newton
/// stability) and a graded junction capacitance. Used standalone for the
/// nwell-to-substrate parasitic (DWell in the paper's Fig. 6) and by the
/// MOSFET for its source/drain junctions.

#include "spice/device.hpp"

namespace sscl::device {

struct DiodeParams {
  double is = 1e-16;   ///< saturation current [A] (per unit area)
  double n = 1.0;      ///< emission coefficient
  double cj0 = 0.0;    ///< zero-bias junction capacitance [F] (per area)
  double mj = 0.5;     ///< grading coefficient
  double pb = 0.8;     ///< built-in potential [V]
  double fc = 0.5;     ///< forward-bias depletion-cap linearisation point
};

/// Stand-alone two-terminal junction diode.
class Diode final : public spice::Device {
 public:
  Diode(std::string name, spice::NodeId anode, spice::NodeId cathode,
        DiodeParams params, double area = 1.0, double temperatureK = 300.15);

  void setup(spice::SetupContext& ctx) override;
  void reserve(spice::PatternContext& ctx) override;
  void load(spice::LoadContext& ctx) override;
  void load_ac(spice::AcContext& ctx) const override;
  void add_noise(spice::NoiseContext& ctx) const override;
  bool describe(spice::DeviceInfo& info) const override;
  void reset_runtime() override {
    cache_valid_ = false;
    v_last_ = v_raw_cache_ = 0.0;
    last_i_ = last_g_ = last_c_ = last_q_ = 0.0;
  }

  /// Conduction current at the last computed operating point.
  double current() const { return last_i_; }

 private:
  spice::NodeId anode_, cathode_;
  DiodeParams params_;
  double area_;
  double ut_;     // n * thermal voltage
  double vcrit_;  // junction limiting knee
  int state_ = -1;
  double v_last_ = 0.0;  // previous-iteration junction voltage (limiting)
  mutable double last_i_ = 0.0;
  mutable double last_g_ = 0.0;
  mutable double last_c_ = 0.0;

  spice::NonlinearPattern np_;
  // Bypass cache: raw (unlimited) junction voltage of the last full
  // evaluation, and the charge that goes with last_i_/last_g_/last_c_.
  bool cache_valid_ = false;
  double v_raw_cache_ = 0.0;
  double last_q_ = 0.0;
};

/// Junction conduction current and conductance with an exponent clamp
/// that continues linearly above u_max (keeps the Jacobian finite).
void junction_current(double v, double is, double nvt, double& i, double& g);

/// Junction depletion charge and capacitance (SPICE fc-linearised form).
void junction_charge(double v, double cj0, double mj, double pb, double fc,
                     double& q, double& c);

/// SPICE3 pnjlim: limit a junction voltage update to the log curve.
/// Sets *limited when the voltage was pulled back.
double pnjlim(double vnew, double vold, double nvt, double vcrit,
              bool* limited);

}  // namespace sscl::device
