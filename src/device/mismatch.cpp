#include "device/mismatch.hpp"

#include <cmath>

#include "util/constants.hpp"

namespace sscl::device {

MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry, util::Rng& rng) {
  const MismatchSigmas s = mismatch_sigmas(params, geometry);
  MosMismatch mm;
  mm.dvt = rng.gaussian(0.0, s.sigma_vt);
  mm.dbeta_rel = rng.gaussian(0.0, s.sigma_beta_rel);
  return mm;
}

MosMismatch sample_mismatch(const MosParams& params,
                            const MosGeometry& geometry,
                            const util::Rng& base, std::uint64_t instance) {
  util::Rng stream = base.fork(instance);
  return sample_mismatch(params, geometry, stream);
}

void sample_mismatch_lanes(const MosParams& params,
                           const MosGeometry& geometry, const util::Rng& base,
                           std::uint64_t first_sample, std::uint64_t instance,
                           int count, double* dvt, double* dbeta_rel) {
  for (int k = 0; k < count; ++k) {
    const MosMismatch mm = sample_mismatch(
        params, geometry, base.fork(first_sample + static_cast<std::uint64_t>(k)),
        instance);
    dvt[k] = mm.dvt;
    dbeta_rel[k] = mm.dbeta_rel;
  }
}

double pair_offset_sigma(const MosParams& params, const MosGeometry& geometry,
                         double temperatureK) {
  const MismatchSigmas s = mismatch_sigmas(params, geometry);
  // VT mismatch refers the full threshold difference to the input; beta
  // mismatch refers as (n*UT/2) * (dB/B) in weak inversion.
  const double nut = params.n * util::thermal_voltage(temperatureK);
  const double vt_term = std::sqrt(2.0) * s.sigma_vt;
  const double beta_term = std::sqrt(2.0) * 0.5 * nut * s.sigma_beta_rel;
  return std::sqrt(vt_term * vt_term + beta_term * beta_term);
}

}  // namespace sscl::device
