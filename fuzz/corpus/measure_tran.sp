* measure cards over a simple RC
.param vdd=1.0 r=10k c=10p tau='r*c'
Vin in 0 PULSE(0 'vdd' 0 1n 1n '50*tau' '100*tau')
R1 in out 'r'
C1 out 0 'c'
.tran '100*tau'
.measure tran tplh trig v(in) val='vdd/2' rise=1 targ v(out) val='vdd/2' rise=1
.measure tran slew trig v(out) val='0.1*vdd' rise=1 targ v(out) val='0.9*vdd' rise=1
.measure tran vmax max v(out) from=0 to='80*tau'
.measure tran charge integ i(vin) from=0
.measure tran vavg avg v(out)
.measure tran vrms rms v(out)
.measure tran vend find v(out) at='90*tau'
.measure tran figure param='tplh/tau'
.end
