* edge-case sources: SIN phase, zero-width PULSE edges, PWL, EXP, .ic
.temp 27
Vs a 0 SIN(0.25 0.25 1meg 0 0 90)
Vp b 0 PULSE(0 1 0 0 0 5u 10u)
Vw c 0 PWL(0 0 1u 1 2u 0.5 '3*1u' 0.75)
Ve d 0 EXP(0 1 1u 100n 5u 200n)
Iq 0 q 1n DC 2n AC 1 45
Ra a 0 1k
Rb b 0 1k
Rc c 0 1k
Rd d 0 1k
Rq q 0 1meg
Cq q 0 1p
.ic v(q)=0.5
.nodeset v(a)=0
.probe weird card
.tran 10u
.end
