* hierarchical STSCL buffer with parameterised subckts
.param vdd=0.5 ib=10n beta=2.5 wn=2u
.global vdd! bias
Vdd vdd! 0 'vdd'
.subckt inv in outp outn wp=1u lp='2*0.18u'
Mtail tail bias 0 0 nmos_hvt W='wp*2' L=lp
M1 outn in tail 0 nmos W=wp L=lp
M2 outp 0 tail 0 nmos W=wp L=lp
R1 vdd! outp 'vdd/(2*ib)'
R2 vdd! outn 'vdd/(2*ib)'
.ends
.subckt buf a yp yn
Xi1 a m1p m1n inv wp='wn*beta'
Xi2 m1p yp yn inv
.eom
Ib vdd! bias 'ib'
Mb bias bias 0 0 nmos_hvt W=2u L=1u
Xtop in op on buf
Vin in 0 PULSE(0 'vdd' 1u 10n 10n 5u 10u)
.tran 20u
.end
