/// libFuzzer harness for device::parse_deck. The parser consumes
/// untrusted SPICE text (CLI users point sscl-lint / deck_runner at
/// arbitrary files), so it must never crash, overflow or hang on any
/// byte sequence — the only acceptable failure is a DeckError with a
/// line number. Successfully parsed decks are additionally pushed
/// through the analog ERC rules, which walk the freshly built circuit
/// and would trip ASan on any dangling element reference.
///
/// Build (clang only):
///   cmake -B build-fuzz -S . -DSSCL_FUZZ=ON
///         -DCMAKE_CXX_COMPILER=clang++ -DSSCL_SANITIZE=address,undefined
///   cmake --build build-fuzz --target fuzz_deck_parser
/// Run with the checked-in decks as the seed corpus:
///   mkdir -p corpus && cp tests/lint/decks/*.sp corpus/
///   ./build-fuzz/fuzz/fuzz_deck_parser corpus -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>

#include "device/deck_parser.hpp"
#include "lint/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap the input: the parser is line-oriented and linear, but a huge
  // element count makes the ERC graph walk quadratic-ish and the run
  // would spend its budget on one pathological deck.
  if (size > 1 << 16) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const sscl::device::ParsedDeck deck = sscl::device::parse_deck(text);
    if (deck.circuit) {
      (void)sscl::lint::check_circuit(*deck.circuit);
    }
  } catch (const sscl::device::DeckError&) {
    // Malformed deck: the one contract-sanctioned outcome.
  } catch (const std::invalid_argument&) {
    // Element factories reject out-of-range values the grammar allows.
  }
  return 0;
}
