/// libFuzzer harness for device::parse_deck and everything sscl-lint
/// runs behind it. The parser consumes untrusted SPICE text (CLI users
/// point sscl-lint / deck_runner at arbitrary files), so it must never
/// crash, overflow or hang on any byte sequence — the only acceptable
/// failure is a DeckError with a line number. Successfully parsed
/// decks are additionally pushed through the full static-analysis
/// pipeline: the shared connectivity IR, every local ERC rule and
/// every dataflow pass (with a bias budget so the budget arithmetic
/// runs too), then the SARIF / JSON exporters and a baseline
/// round-trip — all of which walk the freshly built circuit and
/// fuzzer-shaped diagnostic strings, and would trip ASan on any
/// dangling reference or unescaped byte the JSON parser rejects.
///
/// Build (clang only):
///   cmake -B build-fuzz -S . -DSSCL_FUZZ=ON
///         -DCMAKE_CXX_COMPILER=clang++ -DSSCL_SANITIZE=address,undefined
///   cmake --build build-fuzz --target fuzz_deck_parser
/// Run with the checked-in decks as the seed corpus:
///   mkdir -p corpus && cp tests/lint/decks/*.sp corpus/
///   ./build-fuzz/fuzz/fuzz_deck_parser corpus -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "device/deck_parser.hpp"
#include "lint/check.hpp"
#include "lint/sarif.hpp"
#include "util/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap the input: the parser is line-oriented and linear, but a huge
  // element count makes the ERC graph walk quadratic-ish and the run
  // would spend its budget on one pathological deck.
  if (size > 1 << 16) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const sscl::device::ParsedDeck deck = sscl::device::parse_deck(text);
    if (!deck.circuit) return 0;

    // Full pipeline: IR build, every pass (budget arithmetic on), the
    // diagnostic-id filters.
    sscl::lint::Options options;
    options.bias_budget = 1e-9;
    sscl::lint::Report report =
        sscl::lint::check_circuit(*deck.circuit, options);

    // Exporters must emit strictly valid JSON for any diagnostic text
    // the fuzzer-shaped deck produced (node names come from the input).
    const std::vector<sscl::lint::ArtifactReport> artifacts{
        {"fuzz.sp", std::move(report)}};
    (void)sscl::util::parse_json(sscl::lint::to_sarif(artifacts));
    (void)sscl::util::parse_json(sscl::lint::to_json(artifacts));

    // Baseline round-trip: every finding written must be accepted back.
    const sscl::lint::Baseline baseline =
        sscl::lint::Baseline::parse(sscl::lint::Baseline::write(artifacts));
    if (!baseline.fresh(artifacts).empty()) __builtin_trap();
  } catch (const sscl::device::DeckError&) {
    // Malformed deck: the one contract-sanctioned outcome.
  } catch (const std::invalid_argument&) {
    // Element factories reject out-of-range values the grammar allows.
  }
  return 0;
}
