/// libFuzzer harness for the staged netlist front-end (lexer -> AST ->
/// .param expressions -> hierarchical elaboration -> .measure parsing)
/// and everything sscl-lint runs behind it. The pipeline consumes
/// untrusted SPICE text (CLI users point sscl-lint / deck_runner at
/// arbitrary files), so it must never crash, overflow or hang on any
/// byte sequence — the only acceptable failure is a NetlistError with a
/// source location. No include loader is installed, so the harness can
/// never be steered into the filesystem. Successfully parsed decks are
/// additionally pushed through the full static-analysis pipeline: the
/// shared connectivity IR, every local ERC rule and every dataflow pass
/// (with a bias budget so the budget arithmetic runs too), then the
/// SARIF / JSON exporters and a baseline round-trip — all of which walk
/// the freshly built circuit and fuzzer-shaped diagnostic strings, and
/// would trip ASan on any dangling reference or unescaped byte the JSON
/// parser rejects. Finally the op-region interval analysis runs at the
/// nominal corner and over a PVT box, trapping if the nominal result
/// ever escapes the box result (inclusion isotonicity, the soundness
/// backbone).
///
/// Build (clang only):
///   cmake -B build-fuzz -S . -DSSCL_FUZZ=ON
///         -DCMAKE_CXX_COMPILER=clang++ -DSSCL_SANITIZE=address,undefined
///   cmake --build build-fuzz --target fuzz_deck_parser
/// Run with the committed seed corpus (hierarchical/param/measure decks
/// under fuzz/corpus/ plus the checked-in lint decks):
///   mkdir -p corpus && cp fuzz/corpus/*.sp tests/lint/decks/*.sp corpus/
///   ./build-fuzz/fuzz/fuzz_deck_parser corpus -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/check.hpp"
#include "lint/circuit_view.hpp"
#include "lint/ir.hpp"
#include "lint/op_region.hpp"
#include "lint/sarif.hpp"
#include "netlist/netlist.hpp"
#include "util/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap the input: the parser is line-oriented and linear, but a huge
  // element count makes the ERC graph walk quadratic-ish and the run
  // would spend its budget on one pathological deck.
  if (size > 1 << 16) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    // Lenient mode (accept-and-warn) maximises the surface that runs:
    // unknown cards, .measure specs, .param expressions, subckt
    // parameter overrides. No include_loader: .include is a parse
    // error, never a file read.
    const sscl::netlist::Deck deck = sscl::netlist::parse_netlist(text, {});
    if (!deck.circuit) return 0;

    // Full pipeline: IR build, every pass (budget arithmetic on), the
    // diagnostic-id filters.
    sscl::lint::Options options;
    options.bias_budget = 1e-9;
    sscl::lint::Report report =
        sscl::lint::check_circuit(*deck.circuit, options);

    // Exporters must emit strictly valid JSON for any diagnostic text
    // the fuzzer-shaped deck produced (node names come from the input).
    const std::vector<sscl::lint::ArtifactReport> artifacts{
        {"fuzz.sp", std::move(report)}};
    (void)sscl::util::parse_json(sscl::lint::to_sarif(artifacts));
    (void)sscl::util::parse_json(sscl::lint::to_json(artifacts));

    // Baseline round-trip: every finding written must be accepted back.
    const sscl::lint::Baseline baseline =
        sscl::lint::Baseline::parse(sscl::lint::Baseline::write(artifacts));
    if (!baseline.fresh(artifacts).empty()) __builtin_trap();

    // Interval abstract interpretation: on any deck the fuzzer manages
    // to parse, the nominal-box result must be nested inside the
    // PVT-box result (inclusion isotonicity end to end). A violation
    // means a non-monotone transfer function — the exact bug class
    // that silently breaks soundness — so trap hard. Cap the size:
    // kcl_refine bisects per node per sweep and a fuzzer-shaped mesh
    // of hundreds of nodes would eat the run budget.
    const sscl::lint::CircuitView view(*deck.circuit);
    if (view.slot_count() <= 64) {
      const sscl::lint::AnalysisIR ir = sscl::lint::AnalysisIR::build(view);
      const sscl::lint::OpRegionResult nominal =
          sscl::lint::analyze_op_region(view, ir, {});
      sscl::lint::OpRegionOptions box;
      box.t_lo_k = 273.15;
      box.t_hi_k = 358.15;
      box.vdd_tol = 0.10;
      const sscl::lint::OpRegionResult wide =
          sscl::lint::analyze_op_region(view, ir, box);
      if (!nominal.contradiction && !wide.contradiction) {
        for (int s = 1; s < view.slot_count(); ++s) {
          if (nominal.node_v[s].is_empty()) continue;
          if (!wide.node_v[s].pad(1e-9).contains(nominal.node_v[s])) {
            __builtin_trap();
          }
        }
      }
    }
  } catch (const sscl::netlist::NetlistError&) {
    // Malformed deck: the one contract-sanctioned outcome.
  } catch (const std::invalid_argument&) {
    // Element factories reject out-of-range values the grammar allows.
  }
  return 0;
}
