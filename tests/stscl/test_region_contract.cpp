// Tests for the analytic operating-region contract: the planning-stage
// counterpart of the op-region lint pass. A sane STSCL design point
// passes every clause; pushing each knob past its analytic limit flips
// exactly the corresponding flag.

#include <gtest/gtest.h>

#include <stdexcept>

#include "device/mos_params.hpp"
#include "stscl/scl_params.hpp"
#include "util/constants.hpp"

namespace sscl::stscl {
namespace {

TEST(RegionContract, DefaultDesignPointSatisfiesEveryClause) {
  const SclParams p;  // 1 V, 200 mV swing, 1 nA tail
  const RegionCheck r = check_region_contract(p, device::Process::c180());
  EXPECT_TRUE(r.weak_inversion) << "ic_pair=" << r.ic_pair;
  EXPECT_TRUE(r.swing_ok) << "swing_min=" << r.swing_min;
  EXPECT_TRUE(r.vdd_ok) << "vdd_min=" << r.vdd_min;
  EXPECT_TRUE(r.ok());
  // The numbers themselves are physical: IC well below 1 at 1 nA, the
  // 4 n UT floor near 140 mV at room temperature.
  EXPECT_LT(r.ic_pair, 1.0);
  EXPECT_NEAR(r.swing_min,
              4.0 * device::Process::c180().nmos.n *
                  util::thermal_voltage(device::Process::c180().temperature),
              1e-12);
  EXPECT_GT(r.vdd_min, r.swing_min);
}

TEST(RegionContract, StrongInversionTailCurrentFailsWeakInversion) {
  SclParams p;
  p.iss = 100e-6;  // far past IC = 10 for a 1u/0.5u pair
  const RegionCheck r = check_region_contract(p, device::Process::c180());
  EXPECT_FALSE(r.weak_inversion);
  EXPECT_FALSE(r.ok());
}

TEST(RegionContract, UndersizedSwingFailsSwingClause) {
  SclParams p;
  p.vsw = 0.05;  // below 4 n UT ~ 140 mV
  const RegionCheck r = check_region_contract(p, device::Process::c180());
  EXPECT_FALSE(r.swing_ok);
  EXPECT_FALSE(r.ok());
}

TEST(RegionContract, StarvedSupplyFailsVddClause) {
  SclParams p;
  p.vdd = 0.25;  // below vsw + vdsat_pair + vdsat_tail
  const RegionCheck r = check_region_contract(p, device::Process::c180());
  EXPECT_FALSE(r.vdd_ok);
  EXPECT_FALSE(r.ok());
}

TEST(RegionContract, RejectsNonPositiveTailCurrent) {
  SclParams p;
  p.iss = 0.0;
  EXPECT_THROW(check_region_contract(p, device::Process::c180()),
               std::invalid_argument);
  p.iss = -1e-9;
  EXPECT_THROW(check_region_contract(p, device::Process::c180()),
               std::invalid_argument);
}

TEST(RegionContract, HotterProcessRaisesTheSwingFloor) {
  // swing_min = 4 n UT grows linearly with temperature; the contract
  // must track the process card it is handed, exactly like the interval
  // pass tracks the temperature box.
  const SclParams p;
  const RegionCheck cold =
      check_region_contract(p, device::Process::c180().at_temperature(273.15));
  const RegionCheck hot =
      check_region_contract(p, device::Process::c180().at_temperature(358.15));
  EXPECT_GT(hot.swing_min, cold.swing_min);
  EXPECT_GT(hot.vdd_min, cold.vdd_min);
}

}  // namespace
}  // namespace sscl::stscl
