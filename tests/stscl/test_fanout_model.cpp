#include <gtest/gtest.h>

#include "stscl/characterize.hpp"
#include "stscl/scl_params.hpp"

namespace sscl::stscl {
namespace {

const device::Process kProc = device::Process::c180();

TEST(FanoutModel, LoadCapIsAffineAndClampedBelow) {
  SclModel m;
  // An unloaded output still carries its own wiring and junctions.
  EXPECT_DOUBLE_EQ(m.load_cap(0), m.load_cap(1));
  EXPECT_DOUBLE_EQ(m.load_cap(1), m.cl);
  for (int f = 2; f <= 6; ++f) {
    EXPECT_NEAR(m.load_cap(f) - m.load_cap(f - 1), m.cin, 1e-21);
  }
  // Delay follows td = ln2 * Vsw * CL(f) / Iss.
  EXPECT_NEAR(m.delay(1e-9, 3) / m.delay(1e-9, 1),
              (m.cl + 2 * m.cin) / m.cl, 1e-9);
}

TEST(FanoutModel, DefaultsMatchTransistorLevelFit) {
  // The SclModel defaults are fit_scl_model_fanout() on the c180
  // process at 1 nA; re-run the fit and confirm the shipped constants
  // still describe the silicon to within 30%.
  SclParams p;
  p.iss = 1e-9;
  const SclModel fit = fit_scl_model_fanout(kProc, p);
  const SclModel shipped;
  EXPECT_GT(fit.cl, 0.0);
  EXPECT_GT(fit.cin, 0.0);
  EXPECT_NEAR(fit.cl / shipped.cl, 1.0, 0.3);
  EXPECT_NEAR(fit.cin / shipped.cin, 1.0, 0.3);
  // And the fitted model reproduces a measured mid-range point.
  const DelayResult d2 = measure_cell_delay(kProc, p, CellKind::kBuffer, 2);
  EXPECT_NEAR(fit.delay(p.iss, 2) / d2.td_avg, 1.0, 0.2);
}

}  // namespace
}  // namespace sscl::stscl
