#include "stscl/fabric.hpp"

#include <gtest/gtest.h>

#include "spice/engine.hpp"

namespace sscl::stscl {
namespace {

using spice::Circuit;
using spice::Engine;
using spice::Solution;

const device::Process kProc = device::Process::c180();

/// Helper: build a fabric, drive inputs statically, return the DC diff
/// output of the cell built by `build`.
template <typename BuildFn>
double dc_output(BuildFn build, const std::vector<bool>& inputs,
                 double iss = 1e-9) {
  Circuit c;
  SclParams p;
  p.iss = iss;
  SclFabric fab(c, kProc, p);
  std::vector<DiffSignal> ins;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    DiffSignal s = fab.signal("in" + std::to_string(i));
    fab.drive_const(s, inputs[i]);
    ins.push_back(s);
  }
  DiffSignal out = build(fab, ins);
  Engine engine(c);
  const Solution op = engine.solve_op();
  return op.v(out.p) - op.v(out.n);
}

/// Truth-table check: the differential output must exceed +threshold for
/// logic 1 and be below -threshold for logic 0.
template <typename BuildFn>
void check_truth_table(BuildFn build, int arity,
                       const std::vector<bool>& expected, double iss = 1e-9) {
  const double threshold = 0.8 * 0.2;  // 80% of nominal swing
  for (int row = 0; row < (1 << arity); ++row) {
    std::vector<bool> in(arity);
    for (int b = 0; b < arity; ++b) in[b] = (row >> b) & 1;
    const double v = dc_output(build, in, iss);
    if (expected[row]) {
      EXPECT_GT(v, threshold) << "row " << row;
    } else {
      EXPECT_LT(v, -threshold) << "row " << row;
    }
  }
}

TEST(SclFabric, BufferTruthTable) {
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.buffer(in[0], "dut");
      },
      1, {false, true});
}

TEST(SclFabric, InverterIsFree) {
  const double v = dc_output(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.buffer(in[0], "dut").inverted();
      },
      {true});
  EXPECT_LT(v, -0.15);
}

TEST(SclFabric, And2TruthTable) {
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.and2(in[0], in[1], "dut");
      },
      2, {false, false, false, true});
}

TEST(SclFabric, Or2TruthTable) {
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.or2(in[0], in[1], "dut");
      },
      2, {false, true, true, true});
}

TEST(SclFabric, Xor2TruthTable) {
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.xor2(in[0], in[1], "dut");
      },
      2, {false, true, true, false});
}

TEST(SclFabric, Mux2TruthTable) {
  // inputs: in0 = sel, in1 = a, in2 = b; out = sel ? a : b.
  std::vector<bool> expected(8);
  for (int row = 0; row < 8; ++row) {
    const bool sel = row & 1, a = row & 2, b = row & 4;
    expected[row] = sel ? a : b;
  }
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.mux2(in[0], in[1], in[2], "dut");
      },
      3, expected);
}

TEST(SclFabric, Xor3TruthTable) {
  std::vector<bool> expected(8);
  for (int row = 0; row < 8; ++row) {
    expected[row] = ((row & 1) ^ ((row >> 1) & 1) ^ ((row >> 2) & 1)) != 0;
  }
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.xor3(in[0], in[1], in[2], "dut");
      },
      3, expected);
}

TEST(SclFabric, Majority3TruthTable) {
  std::vector<bool> expected(8);
  for (int row = 0; row < 8; ++row) {
    const int ones = (row & 1) + ((row >> 1) & 1) + ((row >> 2) & 1);
    expected[row] = ones >= 2;
  }
  check_truth_table(
      [](SclFabric& f, const std::vector<DiffSignal>& in) {
        return f.majority3(in[0], in[1], in[2], "dut");
      },
      3, expected);
}

TEST(SclFabric, LatchTransparentWhenClockHigh) {
  // clk = 1: out follows d.
  for (bool d : {false, true}) {
    const double v = dc_output(
        [](SclFabric& f, const std::vector<DiffSignal>& in) {
          return f.latch(in[0], in[1], "dut");
        },
        {d, true});
    if (d) {
      EXPECT_GT(v, 0.15);
    } else {
      EXPECT_LT(v, -0.15);
    }
  }
}

TEST(SclFabric, SwingIndependentOfBiasCurrent) {
  // The decoupling of swing from bias current is the paper's headline
  // property: replica bias holds Vsw constant over 5 decades of Iss.
  for (double iss : {1e-12, 1e-10, 1e-8, 1e-7}) {
    const double v = dc_output(
        [](SclFabric& f, const std::vector<DiffSignal>& in) {
          return f.buffer(in[0], "dut");
        },
        {true}, iss);
    EXPECT_NEAR(v, 0.2, 0.01) << "iss=" << iss;
  }
}

TEST(SclFabric, StaticCurrentScalesWithCellCount) {
  Circuit c;
  SclParams p;
  p.iss = 1e-9;
  SclFabric fab(c, kProc, p);
  DiffSignal in = fab.signal("in");
  fab.drive_const(in, true);
  DiffSignal s = in;
  for (int i = 0; i < 5; ++i) s = fab.buffer(s, "b" + std::to_string(i));
  EXPECT_EQ(fab.cell_count(), 5);
  EXPECT_NEAR(fab.static_current(), 5e-9, 1e-15);
  // Each buffer adds 3 MOS (tail + 2 switches) + 2 loads.
  EXPECT_EQ(fab.mos_count(), 2 + 5 * 5);
}

TEST(SclFabric, SupplyCurrentMatchesCellBudget) {
  // Measured VDD current = cells * Iss + bias overhead (2 mirrors).
  Circuit c;
  SclParams p;
  p.iss = 1e-9;
  SclFabric fab(c, kProc, p);
  DiffSignal in = fab.signal("in");
  fab.drive_const(in, true);
  DiffSignal s = in;
  const int n = 4;
  for (int i = 0; i < n; ++i) s = fab.buffer(s, "b" + std::to_string(i));
  Engine engine(c);
  const Solution op = engine.solve_op();
  auto* vdd = dynamic_cast<spice::VoltageSource*>(c.find_device("Vdd_fab"));
  ASSERT_NE(vdd, nullptr);
  const double i_total = -op.branch_current(vdd->branch());
  // Cells draw n*Iss; the VBN reference and VBP replica each draw Iss.
  EXPECT_NEAR(i_total, (n + 2) * 1e-9, 0.15 * (n + 2) * 1e-9);
}

TEST(SclFabric, SetIssRetunes) {
  Circuit c;
  SclParams p;
  p.iss = 1e-9;
  SclFabric fab(c, kProc, p);
  DiffSignal in = fab.signal("in");
  fab.drive_const(in, true);
  DiffSignal out = fab.buffer(in, "dut");
  Engine engine(c);
  Solution op = engine.solve_op();
  const double swing_1n = op.v(out.p) - op.v(out.n);
  fab.set_iss(1e-11);
  op = engine.solve_op();
  const double swing_10p = op.v(out.p) - op.v(out.n);
  EXPECT_NEAR(swing_1n, swing_10p, 0.005);
  EXPECT_NEAR(fab.params().iss, 1e-11, 1e-20);
}

TEST(SclFabric, OutputCommonModeNearVddMinusHalfSwing) {
  Circuit c;
  SclParams p;
  SclFabric fab(c, kProc, p);
  DiffSignal in = fab.signal("in");
  fab.drive_const(in, true);
  DiffSignal out = fab.buffer(in, "dut");
  Engine engine(c);
  const Solution op = engine.solve_op();
  const double cm = 0.5 * (op.v(out.p) + op.v(out.n));
  EXPECT_NEAR(cm, p.vdd - 0.5 * p.vsw, 0.02);
}

}  // namespace
}  // namespace sscl::stscl
