#include "stscl/characterize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stscl/ring.hpp"
#include "util/numeric.hpp"

namespace sscl::stscl {
namespace {

const device::Process kProc = device::Process::c180();

TEST(SclModel, AnalyticRelations) {
  SclModel m;
  m.vsw = 0.2;
  m.cl = 10e-15;
  // td = ln2 * Vsw * CL / Iss.
  EXPECT_NEAR(m.delay(1e-9), 0.6931 * 0.2 * 10e-15 / 1e-9, 1e-9);
  // Round trip.
  EXPECT_NEAR(m.iss_for_delay(m.delay(3e-10)), 3e-10, 1e-16);
  // Eq. (1): P = 2 ln2 Vsw CL NL f VDD.
  EXPECT_NEAR(m.path_power(10, 1e6, 1.0),
              2 * std::log(2.0) * 0.2 * 10e-15 * 10 * 1e6 * 1.0, 1e-15);
  // fmax halves when depth doubles.
  EXPECT_NEAR(m.fmax(1e-9, 2) / m.fmax(1e-9, 4), 2.0, 1e-9);
  EXPECT_THROW(m.delay(0.0), std::invalid_argument);
  EXPECT_THROW(m.iss_for_delay(-1.0), std::invalid_argument);
}

TEST(Characterize, DcSwingMatchesTarget) {
  SclParams p;
  p.iss = 1e-9;
  EXPECT_NEAR(measure_dc_swing(kProc, p), 0.2, 0.01);
}

// Delay scales as 1/Iss: the defining STSCL property (paper Fig. 9(a)'s
// mechanism). Parameterised across the full tuning range.
class DelayScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(DelayScalingTest, DelayTimesIssIsConstant) {
  SclParams p;
  p.iss = GetParam();
  const DelayResult d = measure_buffer_delay(kProc, p, 1);
  // td * Iss = ln2 * Vsw * CL: constant across bias. CL is ~10-14 fF for
  // this cell; verify the product sits in a narrow band.
  const double product = d.td_avg * p.iss;
  EXPECT_GT(product, 0.8e-15);
  EXPECT_LT(product, 2.5e-15);
  // Swing preserved while toggling.
  EXPECT_NEAR(d.swing, 0.2, 0.04);
}

INSTANTIATE_TEST_SUITE_P(IssSweep, DelayScalingTest,
                         ::testing::Values(1e-11, 1e-10, 1e-9, 1e-8, 1e-7));

TEST(Characterize, DelayProductTightAcrossDecades) {
  // Stronger statement: the product spread over 4 decades is < 20%.
  std::vector<double> products;
  for (double iss : {1e-10, 1e-9, 1e-8}) {
    SclParams p;
    p.iss = iss;
    products.push_back(measure_buffer_delay(kProc, p).td_avg * iss);
  }
  const double lo = *std::min_element(products.begin(), products.end());
  const double hi = *std::max_element(products.begin(), products.end());
  EXPECT_LT(hi / lo, 1.2);
}

TEST(Characterize, FanoutIncreasesDelay) {
  SclParams p;
  p.iss = 1e-9;
  const double d1 = measure_buffer_delay(kProc, p, 1).td_avg;
  const double d4 = measure_buffer_delay(kProc, p, 4).td_avg;
  EXPECT_GT(d4, 1.3 * d1);
  EXPECT_LT(d4, 6.0 * d1);
}

TEST(Characterize, MinVddFallsWithBiasInPaperRange)
{
  // Paper Fig. 9(b): Vdd,min decreases as the tail current decreases
  // (~0.5 V at 10 nA, ~0.35 V below 1 nA). Verify the trend and bracket.
  SclParams p;
  p.iss = 1e-8;
  const double v10n = measure_min_vdd(kProc, p);
  p.iss = 1e-9;
  const double v1n = measure_min_vdd(kProc, p);
  EXPECT_LT(v1n, v10n);
  EXPECT_GT(v10n, 0.25);
  EXPECT_LT(v10n, 0.6);
  EXPECT_GT(v1n, 0.2);
  EXPECT_LT(v1n, 0.5);
}

TEST(Characterize, StaticCurrentTracksCellCount) {
  SclParams p;
  p.iss = 1e-9;
  const double i4 = measure_static_current(kProc, p, 4);
  const double i8 = measure_static_current(kProc, p, 8);
  // Slope = Iss per cell (bias overhead cancels in the difference).
  EXPECT_NEAR((i8 - i4) / 4, 1e-9, 0.1e-9);
}

TEST(Characterize, FitModelRecoversEffectiveLoad) {
  SclParams p;
  const SclModel m = fit_scl_model(kProc, p, {1e-9, 1e-8});
  EXPECT_GT(m.cl, 5e-15);
  EXPECT_LT(m.cl, 25e-15);
  // The fitted model predicts the measured delay at an unseen bias
  // within 25%.
  SclParams probe = p;
  probe.iss = 3e-9;
  const double measured = measure_buffer_delay(kProc, probe).td_avg;
  EXPECT_NEAR(m.delay(3e-9) / measured, 1.0, 0.25);
}

TEST(Characterize, CompoundGatesSlowerThanBuffer) {
  // Deeper stacked paths add delay; the factors feed the event-driven
  // simulator's per-kind timing.
  SclParams p;
  p.iss = 1e-9;
  const auto factors = relative_cell_delays(kProc, p);
  ASSERT_EQ(factors.size(), 5u);
  for (const auto& [kind, f] : factors) {
    if (kind == CellKind::kBuffer) {
      EXPECT_NEAR(f, 1.0, 1e-9);
    } else {
      EXPECT_GT(f, 0.95);
      EXPECT_LT(f, 2.0);
    }
  }
  // The three-level xor3 is the slowest of the set.
  double xor3_f = 0, and2_f = 0;
  for (const auto& [kind, f] : factors) {
    if (kind == CellKind::kXor3) xor3_f = f;
    if (kind == CellKind::kAnd2) and2_f = f;
  }
  EXPECT_GT(xor3_f, and2_f);
}

TEST(Ring, OscillatesNearPredictedFrequency) {
  SclParams p;
  p.iss = 1e-9;
  const RingResult r = measure_ring_oscillator(kProc, p, 5);
  EXPECT_GT(r.frequency, 1e4);
  EXPECT_LT(r.frequency, 1e6);
  // Stage delay from the ring is close to the buffer delay.
  const double td_buf = measure_buffer_delay(kProc, p).td_avg;
  EXPECT_NEAR(r.stage_delay / td_buf, 1.0, 0.5);
  // Full swing.
  EXPECT_GT(r.amplitude, 0.15);
}

TEST(Ring, FrequencyScalesWithBias) {
  SclParams p;
  p.iss = 1e-9;
  const double f1 = measure_ring_oscillator(kProc, p, 3).frequency;
  p.iss = 1e-8;
  const double f10 = measure_ring_oscillator(kProc, p, 3).frequency;
  EXPECT_NEAR(f10 / f1, 10.0, 3.0);
}

TEST(Ring, RejectsTooFewStages) {
  SclParams p;
  EXPECT_THROW(measure_ring_oscillator(kProc, p, 2), std::invalid_argument);
}

}  // namespace
}  // namespace sscl::stscl
