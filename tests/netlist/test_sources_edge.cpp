#include <gtest/gtest.h>

#include <cmath>

#include "netlist/netlist.hpp"
#include "spice/elements.hpp"

namespace sscl::netlist {
namespace {

const spice::SourceSpec& vsource_spec(const spice::Circuit& c,
                                      const std::string& name) {
  for (const auto& dev : c.devices()) {
    if (dev->name() == name) {
      const auto* v = dynamic_cast<const spice::VoltageSource*>(dev.get());
      EXPECT_NE(v, nullptr) << name << " is not a V source";
      return v->spec();
    }
  }
  ADD_FAILURE() << "no device " << name;
  static const spice::SourceSpec dummy;
  return dummy;
}

TEST(SourcesEdge, NonMonotonePwlIsRejectedWithLocation) {
  try {
    parse_netlist(R"(bad pwl
R1 c 0 1k
Vw c 0 PWL(0 0 2u 1 1u 0.5)
.end
)");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(e.message().find("strictly increase"), std::string::npos)
        << e.message();
    // The error points at the offending time token, not the card start.
    EXPECT_EQ(e.loc().line, 3);
    EXPECT_GT(e.loc().col, 1);
  }
}

TEST(SourcesEdge, EqualPwlTimePointsAreAlsoRejected) {
  EXPECT_THROW(parse_netlist("t\nVw c 0 PWL(0 0 1u 1 1u 0.5)\nR1 c 0 1k\n"),
               NetlistError);
}

TEST(SourcesEdge, ZeroWidthPulseEdgesAreClamped) {
  const Deck deck = parse_netlist(R"(hard edges
Vp b 0 PULSE(0 1 0 0 0 5u 10u)
Rb b 0 1k
.end
)");
  const auto& spec = vsource_spec(*deck.circuit, "Vp");
  // Zero rise/fall is clamped to 1 fs so the waveform stays a function;
  // one step past the clamp the pulse is at full swing.
  EXPECT_DOUBLE_EQ(spec.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.value(2e-15), 1.0);
  EXPECT_DOUBLE_EQ(spec.value(4e-6), 1.0);
  EXPECT_DOUBLE_EQ(spec.value(6e-6), 0.0);
}

TEST(SourcesEdge, SinPhaseShiftsTheWaveform) {
  const Deck deck = parse_netlist(R"(sin phase
Vs a 0 SIN(0.25 0.25 1meg 0 0 90)
Vd b 0 SIN(0 1 1meg 5u 0 90)
Ra a 0 1k
Rb b 0 1k
.end
)");
  // sin(90 deg) = 1 right at t=0.
  const auto& vs = vsource_spec(*deck.circuit, "Vs");
  EXPECT_NEAR(vs.value(0.0), 0.5, 1e-12);
  EXPECT_NEAR(vs.value(0.25e-6), 0.25, 1e-9);  // quarter period later
  // Before the delay the source holds the phase-shifted start value.
  const auto& vd = vsource_spec(*deck.circuit, "Vd");
  EXPECT_NEAR(vd.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(vd.value(4.9e-6), 1.0, 1e-12);
}

TEST(SourcesEdge, ExpressionValuedSourceParameters) {
  const Deck deck = parse_netlist(R"(param sources
.param vdd=0.4 tr=1n
V1 a 0 PULSE(0 'vdd' 'tr' 'tr' 'tr' '10*tr' '20*tr')
V2 b 0 'vdd/2'
V3 c 0 DC 'vdd/4'
Ra a 0 1k
Rb b 0 1k
Rc c 0 1k
.end
)");
  const auto& p = vsource_spec(*deck.circuit, "V1");
  EXPECT_NEAR(p.value(5e-9), 0.4, 1e-12);  // flat top mid-pulse
  EXPECT_NEAR(vsource_spec(*deck.circuit, "V2").value(0.0), 0.2, 1e-12);
  EXPECT_NEAR(vsource_spec(*deck.circuit, "V3").value(0.0), 0.1, 1e-12);
}

TEST(SourcesEdge, AcMagnitudeAndPhaseRideAlong) {
  const Deck deck = parse_netlist(R"(ac spec
V1 a 0 DC 0.5 AC 1 45
Ra a 0 1k
.end
)");
  const auto& spec = vsource_spec(*deck.circuit, "V1");
  EXPECT_DOUBLE_EQ(spec.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(spec.ac_magnitude(), 1.0);
  EXPECT_DOUBLE_EQ(spec.ac_phase_deg(), 45.0);
}

TEST(SourcesEdge, ShortSourceListsStillFailCleanly) {
  EXPECT_THROW(parse_netlist("t\nV1 a 0 PULSE(0 1 0)\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW(parse_netlist("t\nV1 a 0 SIN(0 1)\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW(parse_netlist("t\nV1 a 0 PWL(0 0 1u)\nR1 a 0 1k\n"),
               NetlistError);
}

}  // namespace
}  // namespace sscl::netlist
