#include "netlist/measure.hpp"

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "spice/dcsweep.hpp"
#include "spice/waveform.hpp"

namespace sscl::netlist {
namespace {

/// Fixture: a trivial resolvable circuit (nodes a, b; V1 carries branch
/// 0) plus a hand-built waveform -- a 0..1 V triangle on node a with
/// period 2 s, a constant 0.25 V on b and a constant 2 mA source
/// current. The measure engine only reads names and samples, so the
/// waveform does not need to solve the circuit.
class MeasureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deck_ = parse_netlist("t\nV1 a 0 1\nR1 a b 1k\nR2 b 0 1k\n.end\n");
    // Branch ids are handed out by elaboration (the engine normally
    // does this); i(...) probes need them.
    deck_.circuit->elaborate();
    na_ = *deck_.circuit->find_node("a");
    nb_ = *deck_.circuit->find_node("b");
    wave_ = spice::Waveform(deck_.circuit->node_count());
    for (int i = 0; i <= 4; ++i) {
      const double t = static_cast<double>(i);
      std::vector<double> x(3, 0.0);
      x[na_] = (i % 2 == 0) ? 0.0 : 1.0;  // 0,1,0,1,0 triangle
      x[nb_] = 0.25;
      x[2] = 2e-3;  // the V1 branch current row
      wave_.append(t, x);
    }
    input_.circuit = deck_.circuit.get();
    input_.tran = &wave_;
    input_.params = &deck_.params;
  }

  static MeasureSpec trig_targ(const std::string& name,
                               const MeasureSpec::Event& trig,
                               const MeasureSpec::Event& targ) {
    MeasureSpec m;
    m.name = name;
    m.kind = MeasureSpec::Kind::kTrigTarg;
    m.trig = trig;
    m.targ = targ;
    return m;
  }

  static MeasureSpec::Event event(const std::string& node, double level,
                                  MeasureSpec::EdgeSel edge, int count = 1,
                                  double td = 0.0) {
    MeasureSpec::Event ev;
    ev.probe.ref = node;
    ev.level = level;
    ev.edge = edge;
    ev.count = count;
    ev.td = td;
    return ev;
  }

  static MeasureSpec stat(const std::string& name, MeasureSpec::Stat s,
                          Probe::Type type, const std::string& ref,
                          double from = 0.0, double to = -1.0) {
    MeasureSpec m;
    m.name = name;
    m.kind = MeasureSpec::Kind::kStat;
    m.stat = s;
    m.probe.type = type;
    m.probe.ref = ref;
    m.from = from;
    m.to = to;
    return m;
  }

  Deck deck_;
  spice::NodeId na_ = 0, nb_ = 0;
  spice::Waveform wave_;
  MeasureInput input_;
};

TEST_F(MeasureTest, TrigTargInterpolatesCrossings) {
  const auto specs = {trig_targ(
      "d", event("a", 0.5, MeasureSpec::EdgeSel::kRise),
      event("a", 0.5, MeasureSpec::EdgeSel::kFall))};
  const auto r = run_measures(specs, input_);
  ASSERT_TRUE(r[0].value.has_value()) << r[0].error;
  // Rise crosses 0.5 at t=0.5, the next fall at t=1.5.
  EXPECT_NEAR(*r[0].value, 1.0, 1e-12);
}

TEST_F(MeasureTest, TrigTargHonoursCountAndTd) {
  const auto specs = {trig_targ(
      "d", event("a", 0.5, MeasureSpec::EdgeSel::kRise, 1, /*td=*/2.0),
      event("a", 0.5, MeasureSpec::EdgeSel::kRise, 2))};
  const auto r = run_measures(specs, input_);
  ASSERT_TRUE(r[0].value.has_value()) << r[0].error;
  // trig: first rise at/after td=2 is t=2.5; targ: 2nd rise overall is
  // also t=2.5.
  EXPECT_NEAR(*r[0].value, 0.0, 1e-12);
}

TEST_F(MeasureTest, TrigTargEventNotFound) {
  const auto specs = {trig_targ(
      "d", event("a", 5.0, MeasureSpec::EdgeSel::kRise),
      event("a", 0.5, MeasureSpec::EdgeSel::kFall))};
  const auto r = run_measures(specs, input_);
  EXPECT_FALSE(r[0].value.has_value());
  EXPECT_NE(r[0].error.find("event not found"), std::string::npos);
}

TEST_F(MeasureTest, IntegAvgRmsOverWindows) {
  const auto specs = {
      stat("q", MeasureSpec::Stat::kInteg, Probe::Type::kVoltage, "a"),
      stat("m", MeasureSpec::Stat::kAvg, Probe::Type::kVoltage, "a"),
      stat("r", MeasureSpec::Stat::kRms, Probe::Type::kVoltage, "b"),
      stat("half", MeasureSpec::Stat::kInteg, Probe::Type::kVoltage, "a",
           /*from=*/0.5, /*to=*/1.5)};
  const auto r = run_measures(specs, input_);
  // Two unit triangles of area 1 each.
  EXPECT_NEAR(*r[0].value, 2.0, 1e-12);
  EXPECT_NEAR(*r[1].value, 0.5, 1e-12);
  EXPECT_NEAR(*r[2].value, 0.25, 1e-12);
  // Window endpoints are interpolated: trapezoid 0.5->1->0.5.
  EXPECT_NEAR(*r[3].value, 0.75, 1e-12);
}

TEST_F(MeasureTest, MinMaxPpIncludeInterpolatedEndpoints) {
  const auto specs = {
      stat("lo", MeasureSpec::Stat::kMin, Probe::Type::kVoltage, "a", 0.5,
           1.5),
      stat("hi", MeasureSpec::Stat::kMax, Probe::Type::kVoltage, "a", 0.5,
           1.5),
      stat("pp", MeasureSpec::Stat::kPp, Probe::Type::kVoltage, "a", 0.5,
           1.5)};
  const auto r = run_measures(specs, input_);
  EXPECT_NEAR(*r[0].value, 0.5, 1e-12);
  EXPECT_NEAR(*r[1].value, 1.0, 1e-12);
  EXPECT_NEAR(*r[2].value, 0.5, 1e-12);
}

TEST_F(MeasureTest, CurrentProbesNeedABranch) {
  const auto specs = {
      stat("q", MeasureSpec::Stat::kInteg, Probe::Type::kCurrent, "v1"),
      stat("bad", MeasureSpec::Stat::kMax, Probe::Type::kCurrent, "r1"),
      stat("gone", MeasureSpec::Stat::kMax, Probe::Type::kCurrent, "nix")};
  const auto r = run_measures(specs, input_);
  ASSERT_TRUE(r[0].value.has_value()) << r[0].error;
  EXPECT_NEAR(*r[0].value, 8e-3, 1e-15);  // 2 mA * 4 s
  EXPECT_FALSE(r[1].value.has_value());
  EXPECT_NE(r[1].error.find("no branch current"), std::string::npos);
  EXPECT_FALSE(r[2].value.has_value());
  EXPECT_NE(r[2].error.find("unknown device"), std::string::npos);
}

TEST_F(MeasureTest, FindAtInterpolates) {
  MeasureSpec m;
  m.name = "f";
  m.kind = MeasureSpec::Kind::kFindAt;
  m.probe.ref = "a";
  m.at = 0.25;
  const auto r = run_measures({m}, input_);
  EXPECT_NEAR(*r[0].value, 0.25, 1e-12);
}

TEST_F(MeasureTest, ParamMeasuresChainOverPriorResults) {
  MeasureSpec vmax =
      stat("vmax", MeasureSpec::Stat::kMax, Probe::Type::kVoltage, "a");
  MeasureSpec scaled;
  scaled.name = "scaled";
  scaled.kind = MeasureSpec::Kind::kParam;
  scaled.expr = "vmax*4";
  MeasureSpec broken;
  broken.name = "broken";
  broken.kind = MeasureSpec::Kind::kParam;
  broken.expr = "missing_result+1";
  MeasureSpec after;
  after.name = "after";
  after.kind = MeasureSpec::Kind::kParam;
  after.expr = "scaled/2";
  const auto r = run_measures({vmax, scaled, broken, after}, input_);
  EXPECT_NEAR(*r[1].value, 4.0, 1e-12);
  EXPECT_FALSE(r[2].value.has_value());
  EXPECT_NE(r[2].error.find("unknown parameter"), std::string::npos);
  // A failed measure does not poison the ones after it.
  EXPECT_NEAR(*r[3].value, 2.0, 1e-12);
}

TEST_F(MeasureTest, DcMeasuresUseTheSweptAxis) {
  spice::DcSweepResult dc;
  for (int i = 0; i <= 4; ++i) {
    dc.values.push_back(0.1 * i);
    // x = [v(a), v(b), i(v1)]
    dc.solutions.emplace_back(
        std::vector<double>{0.1 * i, 0.05 * i, 1e-3 * i}, 2);
  }
  MeasureInput input = input_;
  input.tran = nullptr;
  input.dc = &dc;
  MeasureSpec m =
      stat("g", MeasureSpec::Stat::kMax, Probe::Type::kVoltage, "b");
  m.analysis = MeasureSpec::Analysis::kDc;
  const auto r = run_measures({m}, input);
  ASSERT_TRUE(r[0].value.has_value()) << r[0].error;
  EXPECT_NEAR(*r[0].value, 0.2, 1e-12);
}

TEST_F(MeasureTest, MissingAnalysisIsAnErrorResultNotAThrow) {
  MeasureInput input = input_;
  input.tran = nullptr;
  const auto specs = {
      stat("q", MeasureSpec::Stat::kInteg, Probe::Type::kVoltage, "a")};
  const auto r = run_measures(specs, input);
  EXPECT_FALSE(r[0].value.has_value());
  EXPECT_NE(r[0].error.find("no transient waveform"), std::string::npos);
}

TEST_F(MeasureTest, CsvIsDeterministic) {
  std::vector<MeasureResult> results(2);
  results[0].name = "tp";
  results[0].value = 0.5;
  results[1].name = "bad";
  results[1].error = "boom, with a comma";
  EXPECT_EQ(measures_to_csv(results),
            "name,value,error\n"
            "tp,0.5,\n"
            "bad,failed,\"boom, with a comma\"\n");
}

}  // namespace
}  // namespace sscl::netlist
