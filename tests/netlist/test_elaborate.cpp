#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "spice/device.hpp"

namespace sscl::netlist {
namespace {

const spice::Device* find_device(const spice::Circuit& c,
                                 const std::string& name) {
  for (const auto& dev : c.devices()) {
    if (dev->name() == name) return dev.get();
  }
  return nullptr;
}

spice::DeviceInfo mos_info(const spice::Circuit& c, const std::string& name) {
  const spice::Device* dev = find_device(c, name);
  EXPECT_NE(dev, nullptr) << name;
  spice::DeviceInfo info;
  EXPECT_TRUE(dev->describe(info));
  EXPECT_TRUE(info.is_mosfet) << name;
  return info;
}

TEST(Elaborate, HierarchicalNamesAndPortMapping) {
  const Deck deck = parse_netlist(R"(two buffers
.subckt inv in out vp
Mp out in vp vp pmos W=2u L=0.2u
Mn out in 0 0 nmos W=1u L=0.2u
.ends
Vdd vdd 0 1.0
Xa a b vdd inv
Xb b c vdd inv
.end
)");
  const spice::Circuit& c = *deck.circuit;
  // Flat devices carry the dotted hierarchical path...
  EXPECT_NE(find_device(c, "xa.mp"), nullptr);
  EXPECT_NE(find_device(c, "xa.mn"), nullptr);
  EXPECT_NE(find_device(c, "xb.mn"), nullptr);
  // ...top-level elements keep their original spelling.
  EXPECT_NE(find_device(c, "Vdd"), nullptr);

  // Ports map onto the caller's nodes: xa drives b, xb reads it.
  const auto info_a = mos_info(c, "xa.mn");
  const auto info_b = mos_info(c, "xb.mn");
  ASSERT_TRUE(c.find_node("b").has_value());
  EXPECT_EQ(info_a.mos_d, *c.find_node("b"));
  EXPECT_EQ(info_b.mos_g, *c.find_node("b"));
  // The supply reached the subckt through the vp port, not by capture.
  ASSERT_TRUE(c.find_node("vdd").has_value());
  EXPECT_EQ(mos_info(c, "xa.mp").mos_b, *c.find_node("vdd"));
}

TEST(Elaborate, SubcktInternalNodesArePrefixed) {
  const Deck deck = parse_netlist(R"(internal node
.subckt rdiv a b
R1 a mid 1k
R2 mid b 1k
.ends
X1 in 0 rdiv
.end
)");
  const spice::Circuit& c = *deck.circuit;
  EXPECT_TRUE(c.find_node("x1.mid").has_value());
  EXPECT_FALSE(c.find_node("mid").has_value());
  EXPECT_NE(find_device(c, "x1.r1"), nullptr);
}

TEST(Elaborate, GlobalNodesBypassPrefixing) {
  const Deck deck = parse_netlist(R"(global supply
.global vdd!
Vdd vdd! 0 0.4
.subckt inv in out
Mp out in vdd! vdd! pmos W=2u L=0.2u
Mn out in 0 0 nmos W=1u L=0.2u
.ends
X1 a b inv
.end
)");
  const spice::Circuit& c = *deck.circuit;
  ASSERT_TRUE(c.find_node("vdd!").has_value());
  EXPECT_FALSE(c.find_node("x1.vdd!").has_value());
  const auto info = mos_info(c, "x1.mp");
  EXPECT_EQ(info.mos_b, *c.find_node("vdd!"));
}

TEST(Elaborate, ParamDefaultsOverridesAndScopes) {
  const Deck deck = parse_netlist(R"(scoping
.param w=1u
.subckt inv in out w=3u
Mn out in 0 0 nmos W='w' L=1u
.ends
X1 a b inv w='2*w'
X2 a b inv
.end
)");
  const spice::Circuit& c = *deck.circuit;
  // X1's override evaluates in the CALLER's scope: 2 * (global w=1u).
  EXPECT_NEAR(mos_info(c, "x1.mn").mos_w, 2e-6, 1e-18);
  // X2 falls back to the subckt default.
  EXPECT_NEAR(mos_info(c, "x2.mn").mos_w, 3e-6, 1e-18);
  // The global environment snapshot only holds top-level .params.
  ASSERT_EQ(deck.params.count("w"), 1u);
  EXPECT_NEAR(deck.params.at("w"), 1e-6, 1e-18);
}

TEST(Elaborate, ParamArithmeticChains) {
  const Deck deck = parse_netlist(R"(chained params
.param vdd=0.4 half='vdd/2' quarter='half/2'
V1 a 0 'quarter'
R1 a 0 1k
.end
)");
  EXPECT_NEAR(deck.params.at("half"), 0.2, 1e-15);
  EXPECT_NEAR(deck.params.at("quarter"), 0.1, 1e-15);
}

TEST(Elaborate, TempCardRetunesDeviceCards) {
  const std::string body = R"(
M1 d g 0 0 nmos W=1u L=0.2u
Vd d 0 0.4
Vg g 0 0.4
.end
)";
  const Deck cold = parse_netlist("t\n.temp 27\n" + body);
  const Deck hot = parse_netlist("t\n.temp 85\n" + body);
  EXPECT_TRUE(hot.has_temp);
  EXPECT_NEAR(hot.temperature_k, 358.15, 1e-9);
  EXPECT_NEAR(mos_info(*cold.circuit, "M1").mos_temp, 300.15, 1e-9);
  EXPECT_NEAR(mos_info(*hot.circuit, "M1").mos_temp, 358.15, 1e-9);
}

TEST(Elaborate, NestingLimitReportsInstantiationChain) {
  ParseOptions options;
  options.max_subckt_depth = 2;
  try {
    parse_netlist(R"(recursive
.subckt loop a
X1 a loop
.ends
X1 top loop
.end
)",
                  options);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(e.message().find("nesting deeper than 2"), std::string::npos)
        << e.message();
    EXPECT_NE(e.message().find("recursion via x1(loop) -> x1.x1(loop)"),
              std::string::npos)
        << e.message();
    EXPECT_NE(e.message().find("raise max_subckt_depth"), std::string::npos);
  }
}

TEST(Elaborate, DeeperLimitAcceptsTheSameDeck) {
  const std::string text = R"(three deep
.subckt leaf a
R1 a 0 1k
.ends
.subckt mid a
X1 a leaf
.ends
.subckt top a
X1 a mid
.ends
Xt in top
.end
)";
  ParseOptions tight;
  tight.max_subckt_depth = 2;
  EXPECT_THROW(parse_netlist(text, tight), NetlistError);

  ParseOptions roomy;
  roomy.max_subckt_depth = 3;
  const Deck deck = parse_netlist(text, roomy);
  EXPECT_NE(find_device(*deck.circuit, "xt.x1.x1.r1"), nullptr);
}

TEST(Elaborate, UnknownCardWarnsByDefaultFailsStrict) {
  const std::string text = R"(foreign cards
R1 a 0 1k
V1 a 0 1
.probe v(a)
.end
)";
  const Deck deck = parse_netlist(text);
  ASSERT_FALSE(deck.warnings.empty());
  bool saw = false;
  for (const auto& w : deck.warnings) {
    if (w.message.find("unsupported card '.probe'") != std::string::npos) {
      saw = true;
      EXPECT_EQ(w.loc.line, 4);
      EXPECT_EQ(w.location, "<deck>:4:1");
    }
  }
  EXPECT_TRUE(saw);

  ParseOptions strict;
  strict.strict = true;
  try {
    parse_netlist(text, strict);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.message(), "unsupported card '.probe'");
    EXPECT_EQ(e.loc().line, 4);
  }
}

TEST(Elaborate, IcAndNodesetCards) {
  const Deck deck = parse_netlist(R"(ic cards
R1 N1 n2 1k
C1 n2 0 1p
V1 n1 0 1
.ic v(N2)=0.5
.nodeset v(n1)=1.0 v(n2)=0.25
.end
)");
  ASSERT_EQ(deck.ics.size(), 1u);
  EXPECT_EQ(deck.ics[0].node, "n2");
  EXPECT_DOUBLE_EQ(deck.ics[0].volts, 0.5);
  ASSERT_EQ(deck.nodesets.size(), 2u);
  EXPECT_EQ(deck.nodesets[0].node, "n1");
  EXPECT_DOUBLE_EQ(deck.nodesets[1].volts, 0.25);
}

TEST(Elaborate, MeasureCardsEvaluateThresholdExpressions) {
  const Deck deck = parse_netlist(R"(measures
.param vdd=0.4
V1 in 0 PULSE(0 'vdd' 1n 1n 1n 10n 20n)
R1 in 0 1k
.tran 20n
.measure tran tcross trig v(in) val='vdd/2' rise=1 targ v(in) val='vdd/2' fall=2 td=1n
.measure tran emid param='vdd*2'
.end
)");
  ASSERT_EQ(deck.measures.size(), 2u);
  const MeasureSpec& m = deck.measures[0];
  EXPECT_EQ(m.name, "tcross");
  EXPECT_EQ(m.kind, MeasureSpec::Kind::kTrigTarg);
  EXPECT_NEAR(m.trig.level, 0.2, 1e-15);
  EXPECT_EQ(m.trig.edge, MeasureSpec::EdgeSel::kRise);
  EXPECT_EQ(m.targ.edge, MeasureSpec::EdgeSel::kFall);
  EXPECT_EQ(m.targ.count, 2);
  EXPECT_NEAR(m.targ.td, 1e-9, 1e-21);
  EXPECT_EQ(m.targ.probe.ref, "in");

  EXPECT_EQ(deck.measures[1].kind, MeasureSpec::Kind::kParam);
  EXPECT_EQ(deck.measures[1].expr, "vdd*2");
}

TEST(Elaborate, LegacyErrorMessagesSurviveTheShim) {
  ParseOptions strict;
  strict.strict = true;
  try {
    parse_netlist("t\nR1 a 0 notanumber4\n.end\n", strict);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    // Number-like garbage keeps the legacy wording the seed tests pin.
    EXPECT_NE(e.message().find("in 'notanumber4'"), std::string::npos)
        << e.message();
  }
  try {
    parse_netlist("t\nX1 a nosuchsub\n.end\n", strict);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.message(), "unknown subckt 'nosuchsub'");
  }
}

}  // namespace
}  // namespace sscl::netlist
