#pragma once

/// \file deck_signature.hpp
/// A canonical, byte-stable textual signature of an elaborated
/// spice::Circuit: every node in NodeId order, every device in
/// construction order with its kind, terminals and DC-edge values.
/// Two parsers that produce the same signature produced bit-identical
/// circuits (same node numbering, same device order, same stamped
/// values), which is the contract the staged netlist front-end keeps
/// with the legacy single-pass deck parser. The committed goldens under
/// tests/netlist/golden/ were generated with the legacy parser at the
/// seed commit.

#include <cstdio>
#include <string>

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace sscl::testing {

inline std::string deck_signature(const spice::Circuit& c) {
  std::string out;
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  };
  out += "nodes " + std::to_string(c.node_count()) + "\n";
  for (int n = 0; n < c.node_count(); ++n) {
    out += "n" + std::to_string(n) + " " + c.node_name(n) + "\n";
  }
  std::size_t i = 0;
  for (const auto& dev : c.devices()) {
    spice::DeviceInfo info;
    const bool described = dev->describe(info);
    out += "d" + std::to_string(i++) + " ";
    out += described ? info.kind : "?";
    out += " " + dev->name();
    for (const auto& t : info.terminals) {
      out += " ";
      out += t.role;
      out += "=" + std::to_string(t.node);
    }
    for (const auto& e : info.edges) {
      out += " e(" + std::to_string(e.a) + "," + std::to_string(e.b) + "," +
             std::to_string(static_cast<int>(e.coupling)) + ",";
      num(e.value);
      out += ")";
    }
    if (info.is_mosfet) {
      out += info.is_nmos ? " nmos" : " pmos";
      for (double v : {info.ispec, info.mos_vt0, info.mos_n, info.mos_kp,
                       info.mos_lambda, info.mos_w, info.mos_l,
                       info.mos_temp, info.mos_ijs_s, info.mos_ijs_d,
                       info.mos_nj}) {
        out += " ";
        num(v);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace sscl::testing
