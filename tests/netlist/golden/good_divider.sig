nodes 2
n0 vdd
n1 mid
d0 vsource V1 pos=0 neg=-1 e(0,-1,1,1)
d1 resistor R1 a=0 b=1 e(0,1,0,1000)
d2 resistor R2 a=1 b=-1 e(1,-1,0,1000)
