nodes 1
n0 a
d0 vsource V1 pos=0 neg=-1 e(0,-1,1,1)
d1 vsource V2 pos=0 neg=-1 e(0,-1,1,2)
d2 resistor R1 a=0 b=-1 e(0,-1,0,1000)
