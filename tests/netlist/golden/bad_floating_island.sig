nodes 4
n0 vdd
n1 b
n2 a
n3 c
d0 vsource V1 pos=0 neg=-1 e(0,-1,1,1)
d1 resistor R1 a=0 b=-1 e(0,-1,0,1000000)
d2 resistor Ra a=2 b=1 e(2,1,0,1000)
d3 resistor Rb a=1 b=3 e(1,3,0,1000)
