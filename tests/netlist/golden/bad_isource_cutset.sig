nodes 2
n0 vdd
n1 n
d0 vsource V1 pos=0 neg=-1 e(0,-1,1,1)
d1 resistor R1 a=0 b=-1 e(0,-1,0,1000000)
d2 isource I1 pos=-1 neg=1 e(-1,1,2,1.0000000000000001e-09)
d3 capacitor C1 a=1 b=-1 e(1,-1,3,9.9999999999999998e-13)
