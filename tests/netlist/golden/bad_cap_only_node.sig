nodes 2
n0 vdd
n1 hold
d0 vsource V1 pos=0 neg=-1 e(0,-1,1,1)
d1 resistor R1 a=0 b=-1 e(0,-1,0,1000000)
d2 capacitor C1 a=0 b=1 e(0,1,3,9.9999999999999998e-13)
d3 capacitor C2 a=1 b=-1 e(1,-1,3,9.9999999999999998e-13)
