#include "netlist/expr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::netlist {
namespace {

double ev(const std::string& text) {
  ParamEnv env;
  return eval_expr(text, env);
}

TEST(Expr, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(ev("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(ev("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(ev("10-4-3"), 3.0);   // left associative
  EXPECT_DOUBLE_EQ(ev("12/4/3"), 1.0);
  EXPECT_DOUBLE_EQ(ev("7%4"), 3.0);
  EXPECT_DOUBLE_EQ(ev("-2*-3"), 6.0);
  EXPECT_DOUBLE_EQ(ev("- -5"), 5.0);
}

TEST(Expr, PowerBindsTighterAndRightAssociates) {
  EXPECT_DOUBLE_EQ(ev("2**3"), 8.0);
  EXPECT_DOUBLE_EQ(ev("2^3"), 8.0);
  EXPECT_DOUBLE_EQ(ev("2**3**2"), 512.0);  // 2**(3**2), not (2**3)**2
  EXPECT_DOUBLE_EQ(ev("-2**2"), 4.0);      // unary minus binds to the base
  EXPECT_DOUBLE_EQ(ev("3*2**2"), 12.0);
}

TEST(Expr, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(ev("40n"), 40e-9);
  EXPECT_DOUBLE_EQ(ev("1.2meg"), 1.2e6);
  EXPECT_DOUBLE_EQ(ev("5e-10"), 5e-10);
  EXPECT_NEAR(ev("2.5u*4"), 1e-5, 1e-20);
  EXPECT_DOUBLE_EQ(ev("1k+1"), 1001.0);
}

TEST(Expr, BuiltinConstantsAndFunctions) {
  EXPECT_NEAR(ev("pi"), M_PI, 1e-15);
  EXPECT_NEAR(ev("sin(pi/2)"), 1.0, 1e-12);
  EXPECT_NEAR(ev("sqrt(2)*sqrt(2)"), 2.0, 1e-12);
  EXPECT_NEAR(ev("ln(e)"), 1.0, 1e-12);
  EXPECT_NEAR(ev("log10(1000)"), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ev("abs(-3)"), 3.0);
  EXPECT_DOUBLE_EQ(ev("min(2,3)"), 2.0);
  EXPECT_DOUBLE_EQ(ev("max(2,3)"), 3.0);
  EXPECT_DOUBLE_EQ(ev("pow(2,10)"), 1024.0);
  EXPECT_DOUBLE_EQ(ev("floor(1.9)"), 1.0);
  EXPECT_DOUBLE_EQ(ev("ceil(1.1)"), 2.0);
  EXPECT_DOUBLE_EQ(ev("sgn(-7)"), -1.0);
  EXPECT_NEAR(ev("db(10)"), 20.0, 1e-12);
}

TEST(Expr, ParameterLookupIsCaseInsensitive) {
  ParamEnv env;
  env.set("Vdd", 0.4);
  EXPECT_DOUBLE_EQ(eval_expr("VDD/2", env), 0.2);
  EXPECT_NEAR(eval_expr("vdd*3", env), 1.2, 1e-15);
}

TEST(Expr, ScopedEnvironmentsShadowOutward) {
  ParamEnv globals;
  globals.set("w", 1e-6);
  globals.set("beta", 2.0);
  ParamEnv inner(&globals);
  inner.set("w", 3e-6);  // shadows the global
  EXPECT_DOUBLE_EQ(eval_expr("w*beta", inner), 6e-6);    // inner w, outer beta
  EXPECT_DOUBLE_EQ(eval_expr("w*beta", globals), 2e-6);  // untouched
  EXPECT_FALSE(globals.lookup("nope").has_value());
  EXPECT_EQ(inner.lookup("beta"), globals.lookup("beta"));
}

TEST(Expr, ErrorsCarryPositions) {
  try {
    ev("1+*2");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.pos(), 2u);
  }
  try {
    ev("2*(3+4");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_NE(std::string(e.what()).find("')'"), std::string::npos);
  }
  try {
    ev("1+undefined_param");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.pos(), 2u);
    EXPECT_NE(std::string(e.what()).find("undefined_param"),
              std::string::npos);
  }
  EXPECT_THROW(ev(""), ExprError);
  EXPECT_THROW(ev("blorp(3)"), ExprError);
  EXPECT_THROW(ev("min(1)"), ExprError);
}

}  // namespace
}  // namespace sscl::netlist
