/// End-to-end front-end test: the sub-Vt buffer bench deck (hierarchical
/// subckts with parameter overrides, .param arithmetic, an .include'd
/// model-card library, expression-valued PULSE source and a .measure
/// block) parsed, simulated and measured entirely in-process. The
/// example_deck_measure_gate ctest pins the same deck byte-for-byte
/// through deck_runner; here we assert the physics with tolerances so
/// the failure mode is readable when something drifts.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "netlist/measure.hpp"
#include "netlist/netlist.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"

namespace sscl::netlist {
namespace {

Deck parse_bench() {
  const std::string dir = SSCL_EXAMPLE_DECK_DIR;
  const std::string path = dir + "/subvt_buffer_bench.sp";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();

  ParseOptions options;
  options.strict = true;
  options.name = path;
  options.include_loader = file_include_loader(dir);
  return parse_netlist(os.str(), options);
}

TEST(NetlistIntegration, BenchDeckElaborates) {
  const Deck deck = parse_bench();
  EXPECT_TRUE(deck.warnings.empty());
  ASSERT_EQ(deck.analyses.size(), 1u);
  EXPECT_EQ(deck.analyses[0].kind, AnalysisCard::Kind::kTran);
  EXPECT_NEAR(deck.analyses[0].tstop, 40e-6, 1e-18);
  EXPECT_EQ(deck.measures.size(), 9u);

  // The hierarchy flattened with dotted names and the instance
  // overrides applied: xinv2 is the doubled stage (wn = 2*1u).
  const spice::Circuit& c = *deck.circuit;
  ASSERT_TRUE(c.find_node("mid").has_value());
  bool found = false;
  for (const auto& dev : c.devices()) {
    if (dev->name() != "xinv2.mn") continue;
    spice::DeviceInfo info;
    ASSERT_TRUE(dev->describe(info));
    EXPECT_NEAR(info.mos_w, 2e-6, 1e-18);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetlistIntegration, BenchDeckMeasuresMatchGoldenPhysics) {
  const Deck deck = parse_bench();
  spice::Engine engine(*deck.circuit);
  spice::TransientOptions opts;
  opts.tstop = deck.analyses[0].tstop;
  const spice::Waveform wave = spice::run_transient(engine, opts);
  ASSERT_GT(wave.size(), 100u);

  MeasureInput input;
  input.circuit = deck.circuit.get();
  input.tran = &wave;
  input.params = &deck.params;
  const auto results = run_measures(deck.measures, input);
  ASSERT_EQ(results.size(), 9u);

  std::map<std::string, double> by_name;
  for (const auto& r : results) {
    ASSERT_TRUE(r.value.has_value()) << r.name << ": " << r.error;
    by_name[r.name] = *r.value;
  }
  // Values pinned byte-exactly by the deck_runner gate; 1% here keeps
  // the in-process test readable when the engine or front-end moves.
  EXPECT_NEAR(by_name.at("tplh"), 1.065e-8, 0.02e-8);
  EXPECT_NEAR(by_name.at("tphl"), 1.047e-8, 0.02e-8);
  EXPECT_NEAR(by_name.at("slewr"), 5.27e-9, 0.1e-9);
  EXPECT_NEAR(by_name.at("vmax"), 0.427, 0.01);
  EXPECT_NEAR(by_name.at("vmin"), -0.033, 0.01);
  EXPECT_NEAR(by_name.at("pavg"), 1.113e-10, 0.02e-10);
  // Derived chain: evdd = -qvdd*vdd, pavg = evdd/simt, tpavg midpoint.
  EXPECT_NEAR(by_name.at("evdd"), -by_name.at("qvdd") * 0.4, 1e-20);
  EXPECT_NEAR(by_name.at("pavg"), by_name.at("evdd") / 40e-6, 1e-12);
  EXPECT_NEAR(by_name.at("tpavg"),
              0.5 * (by_name.at("tplh") + by_name.at("tphl")), 1e-15);
}

}  // namespace
}  // namespace sscl::netlist
