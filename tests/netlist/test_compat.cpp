/// Bit-identity regression between the staged netlist front-end and the
/// legacy single-pass deck parser. The goldens under tests/netlist/golden/
/// were generated with the legacy parser at the seed commit; every
/// committed lint deck must elaborate to exactly the same signature
/// (node numbering, device order, stamped values) through the new
/// pipeline -- both via the device::parse_deck shim and via the new
/// netlist::parse_netlist API.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "deck_signature.hpp"
#include "device/deck_parser.hpp"
#include "netlist/netlist.hpp"

namespace sscl {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<fs::path> lint_decks() {
  std::vector<fs::path> decks;
  for (const auto& entry : fs::directory_iterator(SSCL_LINT_DECK_DIR)) {
    if (entry.path().extension() == ".sp") decks.push_back(entry.path());
  }
  std::sort(decks.begin(), decks.end());
  return decks;
}

TEST(Compat, EveryCommittedDeckHasAGolden) {
  const auto decks = lint_decks();
  ASSERT_GE(decks.size(), 13u);
  for (const auto& deck : decks) {
    fs::path golden = fs::path(SSCL_NETLIST_GOLDEN_DIR) / deck.stem();
    golden += ".sig";
    EXPECT_TRUE(fs::exists(golden)) << "missing golden for " << deck;
  }
}

TEST(Compat, ShimElaboratesBitIdenticalToTheSeedParser) {
  for (const auto& deck_path : lint_decks()) {
    fs::path golden_path = fs::path(SSCL_NETLIST_GOLDEN_DIR) / deck_path.stem();
    golden_path += ".sig";
    if (!fs::exists(golden_path)) continue;  // reported by the test above
    const auto deck = device::parse_deck(slurp(deck_path));
    EXPECT_EQ(testing::deck_signature(*deck.circuit), slurp(golden_path))
        << deck_path.filename() << " drifted from the seed parser";
  }
}

TEST(Compat, LenientPipelineMatchesTheStrictShim) {
  // The committed decks contain no unknown cards, so lenient parsing
  // must not change the elaborated circuit in any way.
  for (const auto& deck_path : lint_decks()) {
    const std::string text = slurp(deck_path);
    const auto legacy = device::parse_deck(text);
    const netlist::Deck fresh = netlist::parse_netlist(text);
    EXPECT_EQ(testing::deck_signature(*fresh.circuit),
              testing::deck_signature(*legacy.circuit))
        << deck_path.filename();
    EXPECT_TRUE(fresh.warnings.empty()) << deck_path.filename();
  }
}

}  // namespace
}  // namespace sscl
