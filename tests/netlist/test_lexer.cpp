#include "netlist/lexer.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sscl::netlist {
namespace {

// Tiny in-memory include resolver so lexer tests stay off the
// filesystem (mirrors how the fuzz harness runs without a loader).
IncludeLoader memory_loader(std::map<std::string, std::string> files) {
  return [files = std::move(files)](
             const std::string& path) -> std::optional<std::string> {
    auto it = files.find(path);
    if (it == files.end()) return std::nullopt;
    return it->second;
  };
}

TEST(Lexer, TitleIsNeverTokenized) {
  const auto lexed = lex_deck("R1 in out 1k is a title, not a card\n.end\n");
  EXPECT_EQ(lexed.title, "R1 in out 1k is a title, not a card");
  ASSERT_EQ(lexed.lines.size(), 1u);
  EXPECT_EQ(lexed.lines[0].tokens[0].text, ".end");
}

TEST(Lexer, TokenProvenanceLineAndColumn) {
  const auto lexed = lex_deck("title\nR1 in out 1k\n  C1 a 0 1p\n");
  ASSERT_EQ(lexed.lines.size(), 2u);

  const auto& r1 = lexed.lines[0].tokens;
  ASSERT_EQ(r1.size(), 4u);
  EXPECT_EQ(r1[0].text, "R1");
  EXPECT_EQ(r1[0].loc.line, 2);
  EXPECT_EQ(r1[0].loc.col, 1);
  EXPECT_EQ(r1[3].text, "1k");
  EXPECT_EQ(r1[3].loc.col, 11);

  const auto& c1 = lexed.lines[1].tokens;
  EXPECT_EQ(c1[0].loc.line, 3);
  EXPECT_EQ(c1[0].loc.col, 3);  // leading whitespace skipped, column kept

  EXPECT_EQ(lexed.files.format(r1[3].loc), "<deck>:2:11");
}

TEST(Lexer, ContinuationKeepsPerTokenProvenance) {
  const auto lexed = lex_deck("title\nV1 in 0\n+ DC 1.5\nR1 in 0 1k\n");
  ASSERT_EQ(lexed.lines.size(), 2u);
  const auto& v1 = lexed.lines[0].tokens;
  ASSERT_EQ(v1.size(), 5u);
  EXPECT_EQ(v1[0].text, "V1");
  EXPECT_EQ(v1[0].loc.line, 2);
  EXPECT_EQ(v1[3].text, "DC");
  EXPECT_EQ(v1[3].loc.line, 3);  // token on the continuation line
  EXPECT_EQ(v1[4].text, "1.5");
}

TEST(Lexer, CommentsAreQuoteAware) {
  const auto lexed = lex_deck(
      "title\n"
      "* full-line comment\n"
      "R1 in 0 1k $ trailing\n"
      "R2 in 0 2k ; trailing too\n"
      ".param a='1;2' b=3 $ after quote\n");
  ASSERT_EQ(lexed.lines.size(), 3u);
  EXPECT_EQ(lexed.lines[0].tokens.size(), 4u);
  EXPECT_EQ(lexed.lines[1].tokens.size(), 4u);
  const auto& p = lexed.lines[2].tokens;
  // .param a = '1;2' b = 3  -- the ';' inside quotes is literal.
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p[3].text, "1;2");
  EXPECT_TRUE(p[3].quoted);
  EXPECT_EQ(p[6].text, "3");
}

TEST(Lexer, QuotedExpressionsBecomeSingleTokens) {
  const auto lexed =
      lex_deck("title\nVin in 0 PULSE(0 'vdd' {2*tr} 1n)\n");
  const auto& t = lexed.lines[0].tokens;
  ASSERT_EQ(t.size(), 8u);
  EXPECT_EQ(t[3].text, "PULSE");
  EXPECT_EQ(t[4].text, "0");
  EXPECT_FALSE(t[4].quoted);
  EXPECT_EQ(t[5].text, "vdd");
  EXPECT_TRUE(t[5].quoted);
  EXPECT_EQ(t[6].text, "2*tr");
  EXPECT_TRUE(t[6].quoted);
  EXPECT_EQ(t[7].text, "1n");
}

TEST(Lexer, EqualsIsItsOwnToken) {
  const auto lexed = lex_deck("title\nM1 d g s b nmos W=2u L=0.2u\n");
  const auto& t = lexed.lines[0].tokens;
  ASSERT_EQ(t.size(), 12u);
  EXPECT_EQ(t[6].text, "W");
  EXPECT_EQ(t[7].text, "=");
  EXPECT_EQ(t[8].text, "2u");
}

TEST(Lexer, UnterminatedQuoteIsAnError) {
  try {
    lex_deck("title\n.param a='1+2\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.loc().line, 2);
  }
}

TEST(Lexer, IncludeSplicesWithOwnProvenance) {
  LexOptions options;
  options.include_loader =
      memory_loader({{"lib.inc", "Rlib a 0 1k\nClib a 0 1p\n"}});
  const auto lexed = lex_deck("title\nR1 in 0 1k\n.include lib.inc\nR2 in 0 2k\n",
                              "top.sp", options);
  ASSERT_EQ(lexed.lines.size(), 4u);
  EXPECT_EQ(lexed.lines[0].tokens[0].text, "R1");
  EXPECT_EQ(lexed.lines[1].tokens[0].text, "Rlib");
  EXPECT_EQ(lexed.lines[2].tokens[0].text, "Clib");
  EXPECT_EQ(lexed.lines[3].tokens[0].text, "R2");

  // The included tokens point into lib.inc, line numbers restart there.
  EXPECT_EQ(lexed.files.format(lexed.lines[1].tokens[0].loc), "lib.inc:1:1");
  EXPECT_EQ(lexed.files.format(lexed.lines[2].tokens[0].loc), "lib.inc:2:1");
  // ...and the surrounding deck keeps its own numbering.
  EXPECT_EQ(lexed.files.format(lexed.lines[3].tokens[0].loc), "top.sp:4:1");
}

TEST(Lexer, MissingIncludeReportsCardLocation) {
  try {
    lex_deck("title\n.include nope.inc\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.loc().line, 2);
    EXPECT_NE(e.message().find("nope.inc"), std::string::npos);
  }
}

TEST(Lexer, IncludeCycleIsDetected) {
  LexOptions options;
  options.include_loader = memory_loader({{"a.inc", ".include b.inc\n"},
                                          {"b.inc", ".include a.inc\n"}});
  EXPECT_THROW(lex_deck("title\n.include a.inc\n", "top.sp", options),
               NetlistError);
}

}  // namespace
}  // namespace sscl::netlist
