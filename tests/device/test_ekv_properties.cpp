#include <gtest/gtest.h>

#include <cmath>

#include "device/ekv.hpp"
#include "util/rng.hpp"

namespace sscl::device {
namespace {

const Process kProc = Process::c180();
const MosGeometry kGeo{2e-6, 1e-6, 0, 0};
const MosMismatch kNoMm;
constexpr double kT = 300.15;

// Gummel symmetry: swapping source and drain negates the current, at
// random bias points across all regions.
class GummelSymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(GummelSymmetryTest, HoldsAtRandomBias) {
  util::Rng rng(GetParam());
  for (int k = 0; k < 50; ++k) {
    const double vg = rng.uniform(0.0, 1.2);
    const double va = rng.uniform(0.0, 1.0);
    const double vb_t = rng.uniform(0.0, 1.0);
    const EkvResult fwd =
        ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, va, vb_t, 0.0, kT);
    const EkvResult rev =
        ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, vb_t, va, 0.0, kT);
    const double scale = std::max(std::fabs(fwd.id), 1e-18);
    EXPECT_NEAR(fwd.id, -rev.id, 0.05 * scale) << vg << " " << va << " " << vb_t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GummelSymmetryTest, ::testing::Values(1, 2, 3));

// Monotonicity: ID strictly increases with VGS at fixed VDS (saturation).
TEST(EkvProperty, MonotoneInGateVoltage) {
  double prev = -1.0;
  for (double vg = 0.0; vg <= 1.2; vg += 0.01) {
    const double id =
        ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, 0.6, 0.0, 0.0, kT).id;
    EXPECT_GT(id, prev);
    prev = id;
  }
}

// Passivity: with VD >= VS >= 0 and any VG, the drain current never
// flows backwards (no negative conductance anywhere).
TEST(EkvProperty, PassiveForwardOperation) {
  util::Rng rng(4);
  for (int k = 0; k < 200; ++k) {
    const double vs = rng.uniform(0.0, 0.8);
    const double vd = vs + rng.uniform(0.0, 0.8);
    const double vg = rng.uniform(-0.2, 1.4);
    const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, vd, vs, 0.0, kT);
    EXPECT_GE(r.id, -1e-18);
    EXPECT_GE(r.gds, -1e-15);  // bounded CLM keeps this non-negative
  }
}

// Continuity: no jumps across the weak/strong inversion transition.
TEST(EkvProperty, SmoothAcrossInversionRegions) {
  double prev_id = 0, prev_gm = 0;
  bool first = true;
  for (double vg = 0.2; vg <= 0.9; vg += 0.001) {
    const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, 0.6, 0, 0, kT);
    if (!first) {
      // Relative step between adjacent points stays small.
      EXPECT_LT(std::fabs(r.id - prev_id) / std::max(prev_id, 1e-18), 0.12);
      EXPECT_LT(std::fabs(r.gm - prev_gm) / std::max(prev_gm, 1e-18), 0.12);
    }
    prev_id = r.id;
    prev_gm = r.gm;
    first = false;
  }
}

// gm/ID in deep weak inversion approaches the theoretical 1/(n UT).
TEST(EkvProperty, GmOverIdLimit) {
  const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.1, 0.6, 0, 0, kT);
  const double gm_over_id = r.gm / r.id;
  const double limit = 1.0 / (kProc.nmos.n * 0.025852);
  EXPECT_NEAR(gm_over_id / limit, 1.0, 0.03);
}

// Saturation current matches the EKV weak-inversion closed form.
TEST(EkvProperty, WeakInversionClosedForm) {
  const double ut = 0.025852;
  // Deep weak inversion only: at vg = 0.26 the moderate-inversion
  // tail of F(v) already deviates ~6% from the pure exponential.
  for (double vg : {0.06, 0.10, 0.16}) {
    const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, 0.6, 0, 0, kT);
    const double vp = (vg - kProc.nmos.vt0) / kProc.nmos.n;
    const double clm = 1.0 + kProc.nmos.lambda * 2.0 * std::tanh(0.3);
    const double analytic = r.ispec * std::exp(vp / ut) * clm;
    EXPECT_NEAR(r.id / analytic, 1.0, 0.02) << vg;
  }
}

// Temperature: the subthreshold swing n*UT*ln10 grows linearly with T.
TEST(EkvProperty, SwingLinearInTemperature) {
  const double s300 = subthreshold_swing(kProc.nmos, 300.0);
  const double s400 = subthreshold_swing(kProc.nmos, 400.0);
  EXPECT_NEAR(s400 / s300, 400.0 / 300.0, 1e-9);
}

}  // namespace
}  // namespace sscl::device
