#include "device/deck_parser.hpp"

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"

namespace sscl::device {
namespace {

TEST(DeckParser, TitleAndDivider) {
  const auto deck = parse_deck(R"(simple divider
V1 in 0 2.0
R1 in mid 1k
R2 mid 0 1k
.op
.end
)");
  EXPECT_EQ(deck.title, "simple divider");
  ASSERT_EQ(deck.analyses.size(), 1u);
  EXPECT_EQ(deck.analyses[0].kind, AnalysisCard::Kind::kOp);

  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(*deck.circuit->find_node("mid")), 1.0, 1e-6);
}

TEST(DeckParser, CommentsAndContinuations) {
  const auto deck = parse_deck(R"(* full-line comment
V1 in 0
+ DC 1.5   $ end-of-line comment
R1 in 0 3k ; another comment style
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(*deck.circuit->find_node("in")), 1.5, 1e-9);
}

TEST(DeckParser, EngineeringSuffixes) {
  const auto deck = parse_deck(R"(suffixes
I1 0 n1 2u
R1 n1 0 1meg
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(*deck.circuit->find_node("n1")), 2.0, 1e-6);
}

TEST(DeckParser, PulseSourceAndTran) {
  const auto deck = parse_deck(R"(rc step
V1 in 0 PULSE(0 1 1u 10n 10n 1m)
R1 in out 1k
C1 out 0 1n
.tran 10n 6u
)");
  ASSERT_EQ(deck.analyses.size(), 1u);
  EXPECT_EQ(deck.analyses[0].kind, AnalysisCard::Kind::kTran);
  EXPECT_NEAR(deck.analyses[0].tstop, 6e-6, 1e-12);

  spice::Engine engine(*deck.circuit);
  spice::TransientOptions opts;
  opts.tstop = deck.analyses[0].tstop;
  const spice::Waveform w = run_transient(engine, opts);
  const spice::NodeId out = *deck.circuit->find_node("out");
  EXPECT_NEAR(w.final_value(out), 1.0 - std::exp(-5.0 + 1.0), 0.05);
}

TEST(DeckParser, AcCardAndSource) {
  const auto deck = parse_deck(R"(ac test
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.ac dec 10 1k 10meg
)");
  ASSERT_EQ(deck.analyses.size(), 1u);
  const AnalysisCard& a = deck.analyses[0];
  EXPECT_EQ(a.kind, AnalysisCard::Kind::kAc);
  EXPECT_EQ(a.points_per_decade, 10);
  EXPECT_NEAR(a.f_stop, 10e6, 1.0);

  spice::Engine engine(*deck.circuit);
  spice::AcResult res = run_ac_decade(engine, a.f_start, a.f_stop,
                                      a.points_per_decade);
  const spice::NodeId out = *deck.circuit->find_node("out");
  EXPECT_NEAR(res.bandwidth_3db(out), 1.0 / (2 * M_PI * 1e-6), 0.1e6);
}

TEST(DeckParser, MosfetWithBuiltinModel) {
  // Diode-connected NMOS pulled by 1 nA: VGS in the subthreshold range.
  const auto deck = parse_deck(R"(mos test
Vdd vdd 0 1.2
Ib vdd g 1n
M1 g g 0 0 nmos W=2u L=1u
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  const double vg = op.v(*deck.circuit->find_node("g"));
  EXPECT_GT(vg, 0.15);
  EXPECT_LT(vg, 0.45);
}

TEST(DeckParser, CustomModelCard) {
  const auto deck = parse_deck(R"(custom model
.model hot NMOS (VT0=0.3 KP=500u N=1.2)
Vdd vdd 0 1.2
Ib vdd g 1n
M1 g g 0 0 hot W=2u L=1u
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  // Lower VT0 -> lower VGS at the same current than the builtin card.
  EXPECT_LT(op.v(*deck.circuit->find_node("g")), 0.30);
}

TEST(DeckParser, DiodeElement) {
  const auto deck = parse_deck(R"(diode test
V1 in 0 1.0
R1 in a 1k
D1 a 0 d
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  const double va = op.v(*deck.circuit->find_node("a"));
  EXPECT_GT(va, 0.4);
  EXPECT_LT(va, 0.8);
}

TEST(DeckParser, ControlledSources) {
  const auto deck = parse_deck(R"(controlled
V1 in 0 0.1
E1 out 0 in 0 10
R1 out 0 1k
G1 0 i1 in 0 1m
R2 i1 0 1k
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(*deck.circuit->find_node("out")), 1.0, 1e-6);
  EXPECT_NEAR(op.v(*deck.circuit->find_node("i1")), 0.1, 1e-6);
}

TEST(DeckParser, SubcktExpansion) {
  const auto deck = parse_deck(R"(hierarchy
.subckt divider top mid bot
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 2.0
X1 in m1 0 divider
X2 m1 m2 0 divider
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  // X1: divider from 2V to 0 with its midpoint loaded by X2 (2k to gnd
  // through another divider whose mid is m2).
  const double m1 = op.v(*deck.circuit->find_node("m1"));
  EXPECT_NEAR(m1, 2.0 * (2.0 / 3.0) / (1 + 2.0 / 3.0), 1e-3);
  const double m2 = op.v(*deck.circuit->find_node("m2"));
  EXPECT_NEAR(m2, m1 / 2, 1e-6);
  // Internal nodes are namespaced, not merged.
  EXPECT_FALSE(deck.circuit->find_node("mid").has_value());
}

TEST(DeckParser, NestedSubckt) {
  const auto deck = parse_deck(R"(nested
.subckt half a b
R1 a b 1k
.ends
.subckt full top bot
X1 top m half
X2 m bot half
.ends
V1 in 0 1.0
Xmain in 0 full
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  const auto mid = deck.circuit->find_node("xmain.m");
  ASSERT_TRUE(mid.has_value());
  EXPECT_NEAR(op.v(*mid), 0.5, 1e-6);
}

TEST(DeckParser, DcSweepCard) {
  const auto deck = parse_deck(R"(sweep
V1 in 0 0
R1 in 0 1k
.dc V1 0 1 0.1
)");
  ASSERT_EQ(deck.analyses.size(), 1u);
  const AnalysisCard& a = deck.analyses[0];
  EXPECT_EQ(a.kind, AnalysisCard::Kind::kDc);
  EXPECT_EQ(a.sweep_source, "V1");
  EXPECT_NEAR(a.sweep_step, 0.1, 1e-12);
}

TEST(DeckParser, ErrorsCarryLineNumbers) {
  try {
    parse_deck("title\nR1 a 0 oops\n");
    FAIL() << "expected DeckError";
  } catch (const DeckError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_deck("title\nQ1 a b c\n"), DeckError);       // element
  EXPECT_THROW(parse_deck("title\nM1 d g s b nope\n"), DeckError);  // model
  EXPECT_THROW(parse_deck("title\nX1 a b ghost\n"), DeckError);   // subckt
  EXPECT_THROW(parse_deck("title\n.weird\n"), DeckError);         // card
  EXPECT_THROW(parse_deck(""), DeckError);                        // empty
}

TEST(DeckParser, StsclInverterDeckEndToEnd) {
  // A realistic mini-deck: current-mirror-biased STSCL buffer stage.
  const auto deck = parse_deck(R"(stscl cell from a deck
Vdd vdd 0 1.0
Ib vdd vbn 1n
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
MT tail vbn 0 0 nmos_hvt W=2u L=1u
M1 outn inp tail 0 nmos W=1u L=0.5u
M2 outp inn tail 0 nmos W=1u L=0.5u
* resistor loads stand in for the replica-biased PMOS here
RLp vdd outp 200meg
RLn vdd outn 200meg
Vip inp 0 1.0
Vin inn 0 0.8
.op
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  const double swing = op.v(*deck.circuit->find_node("outp")) -
                       op.v(*deck.circuit->find_node("outn"));
  EXPECT_GT(swing, 0.1);
  EXPECT_LT(swing, 0.3);
}

}  // namespace
}  // namespace sscl::device
