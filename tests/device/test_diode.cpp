#include "device/diode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"
#include "util/constants.hpp"

namespace sscl::device {
namespace {

using spice::Circuit;
using spice::Engine;
using spice::kGround;
using spice::NodeId;
using spice::Resistor;
using spice::Solution;
using spice::SourceSpec;
using spice::VoltageSource;

TEST(JunctionMath, CurrentAndConductanceConsistent) {
  const double is = 1e-15, nvt = 0.0259;
  for (double v : {-0.5, -0.1, 0.0, 0.3, 0.6, 0.9}) {
    double i, g;
    junction_current(v, is, nvt, i, g);
    double i2, g2;
    const double h = 1e-7;
    junction_current(v + h, is, nvt, i2, g2);
    double i3, g3;
    junction_current(v - h, is, nvt, i3, g3);
    EXPECT_NEAR(g, (i2 - i3) / (2 * h), std::fabs(g) * 1e-3 + 1e-18) << v;
  }
}

TEST(JunctionMath, ClampContinuity) {
  const double is = 1e-15, nvt = 0.0259;
  const double v_clamp = 80.0 * nvt;
  double i_lo, g_lo, i_hi, g_hi;
  junction_current(v_clamp - 1e-9, is, nvt, i_lo, g_lo);
  junction_current(v_clamp + 1e-9, is, nvt, i_hi, g_hi);
  EXPECT_NEAR(i_lo / i_hi, 1.0, 1e-6);
  EXPECT_NEAR(g_lo / g_hi, 1.0, 1e-6);
  // Beyond the clamp the current keeps increasing but stays finite.
  double i_far, g_far;
  junction_current(5.0, is, nvt, i_far, g_far);
  EXPECT_TRUE(std::isfinite(i_far));
  EXPECT_GT(i_far, i_hi);
}

TEST(JunctionMath, ChargeCapacitanceConsistent) {
  const double cj0 = 1e-15, mj = 0.5, pb = 0.8, fc = 0.5;
  for (double v : {-2.0, -0.5, 0.0, 0.3, 0.39, 0.41, 0.6}) {
    double q1, c1, q2, c2;
    const double h = 1e-6;
    junction_charge(v + h, cj0, mj, pb, fc, q2, c2);
    junction_charge(v - h, cj0, mj, pb, fc, q1, c1);
    double q, c;
    junction_charge(v, cj0, mj, pb, fc, q, c);
    EXPECT_NEAR(c, (q2 - q1) / (2 * h), c * 1e-3 + 1e-20) << v;
  }
  // Reverse bias shrinks the capacitance.
  double q_rev, c_rev, q_zero, c_zero;
  junction_charge(-1.0, cj0, mj, pb, fc, q_rev, c_rev);
  junction_charge(0.0, cj0, mj, pb, fc, q_zero, c_zero);
  EXPECT_LT(c_rev, c_zero);
  EXPECT_NEAR(c_zero, cj0, 1e-20);
}

TEST(Diode, ForwardDropInCircuit) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(2.0));
  c.add<Resistor>("R1", in, a, 1e3);
  DiodeParams dp;
  dp.is = 1e-15;
  c.add<Diode>("D1", a, kGround, dp);
  Engine engine(c);
  const Solution op = engine.solve_op();
  // Forward drop in the 0.55-0.75 V range for ~1.3 mA.
  EXPECT_GT(op.v(a), 0.5);
  EXPECT_LT(op.v(a), 0.8);
  // KCL: resistor current equals diode current.
  const double ir = (2.0 - op.v(a)) / 1e3;
  const double ut = util::thermal_voltage();
  const double id = 1e-15 * (std::exp(op.v(a) / ut) - 1.0);
  EXPECT_NEAR(ir / id, 1.0, 1e-3);
}

TEST(Diode, ReverseBlocks) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(-2.0));
  c.add<Resistor>("R1", in, a, 1e3);
  DiodeParams dp;
  c.add<Diode>("D1", a, kGround, dp);
  Engine engine(c);
  const Solution op = engine.solve_op();
  // Nearly the full -2 V appears across the diode.
  EXPECT_LT(op.v(a), -1.99);
}

TEST(Diode, AreaScalesCurrent) {
  auto solve_with_area = [](double area) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId a = c.node("a");
    c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(1.0));
    c.add<Resistor>("R1", in, a, 1e6);
    DiodeParams dp;
    c.add<Diode>("D1", a, kGround, dp, area);
    Engine engine(c);
    return engine.solve_op().v(a);
  };
  // Larger area -> same current at lower forward voltage.
  EXPECT_LT(solve_with_area(10.0), solve_with_area(1.0));
}

TEST(Diode, JunctionCapacitanceSlowsTransient) {
  // Reverse-biased diode with cap vs without: the RC settling differs.
  auto settle_time = [](double cj0) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId a = c.node("a");
    c.add<VoltageSource>("V1", in, kGround,
                         SourceSpec::pulse(0, -1, 1e-9, 1e-9, 1e-9, 1));
    c.add<Resistor>("R1", in, a, 1e6);
    DiodeParams dp;
    dp.cj0 = cj0;
    c.add<Diode>("D1", a, kGround, dp);
    Engine engine(c);
    spice::TransientOptions opts;
    opts.tstop = 2e-5;
    const auto w = run_transient(engine, opts);
    const auto t = w.cross(a, -0.5, spice::Edge::kFall);
    return t.value_or(opts.tstop);
  };
  EXPECT_GT(settle_time(5e-12), 3.0 * settle_time(1e-15));
}

TEST(Diode, PnjlimPullsBackLargeSteps) {
  bool limited = false;
  const double nvt = 0.0259;
  const double v = pnjlim(2.0, 0.6, nvt, 0.6, &limited);
  EXPECT_TRUE(limited);
  EXPECT_LT(v, 0.75);  // pulled onto the log curve, far below the raw 2 V
  // Small steps pass through untouched.
  limited = false;
  EXPECT_DOUBLE_EQ(pnjlim(0.61, 0.6, nvt, 0.7, &limited), 0.61);
  EXPECT_FALSE(limited);
}

}  // namespace
}  // namespace sscl::device
