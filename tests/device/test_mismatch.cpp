#include "device/mismatch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/numeric.hpp"

namespace sscl::device {
namespace {

const Process kProc = Process::c180();

TEST(Mismatch, PelgromScaling) {
  const MosGeometry small{1e-6, 1e-6, 0, 0};
  const MosGeometry big{4e-6, 4e-6, 0, 0};
  const auto s_small = mismatch_sigmas(kProc.nmos, small);
  const auto s_big = mismatch_sigmas(kProc.nmos, big);
  // 4x area -> 4x sqrt(WL) ... W*L grows 16x, sqrt grows 4x.
  EXPECT_NEAR(s_small.sigma_vt / s_big.sigma_vt, 4.0, 1e-9);
  EXPECT_NEAR(s_small.sigma_beta_rel / s_big.sigma_beta_rel, 4.0, 1e-9);
}

TEST(Mismatch, SigmaMagnitudeMatchesAvt) {
  // 1 um x 1 um with AVT = 3.5 mV*um -> sigma 3.5 mV.
  const MosGeometry geo{1e-6, 1e-6, 0, 0};
  const auto s = mismatch_sigmas(kProc.nmos, geo);
  EXPECT_NEAR(s.sigma_vt, 3.5e-3, 1e-6);
}

TEST(Mismatch, SampledDistributionMatchesSigmas) {
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  const auto s = mismatch_sigmas(kProc.nmos, geo);
  util::Rng rng(2024);
  std::vector<double> dvt, dbeta;
  for (int i = 0; i < 20000; ++i) {
    const MosMismatch mm = sample_mismatch(kProc.nmos, geo, rng);
    dvt.push_back(mm.dvt);
    dbeta.push_back(mm.dbeta_rel);
  }
  EXPECT_NEAR(util::mean(dvt), 0.0, s.sigma_vt * 0.05);
  EXPECT_NEAR(util::stddev(dvt), s.sigma_vt, s.sigma_vt * 0.05);
  EXPECT_NEAR(util::stddev(dbeta), s.sigma_beta_rel, s.sigma_beta_rel * 0.05);
}

TEST(Mismatch, PerInstanceStreamsArePureFunctionsOfSeedAndIndex) {
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  const util::Rng base(2026);
  // Same (base, instance) -> same draw, however often the base was used.
  const MosMismatch a = sample_mismatch(kProc.nmos, geo, base, 5);
  for (int k = 0; k < 3; ++k) {
    (void)sample_mismatch(kProc.nmos, geo, base, static_cast<std::uint64_t>(k));
  }
  const MosMismatch b = sample_mismatch(kProc.nmos, geo, base, 5);
  EXPECT_EQ(a.dvt, b.dvt);
  EXPECT_EQ(a.dbeta_rel, b.dbeta_rel);
  // Different instances give different draws.
  const MosMismatch c = sample_mismatch(kProc.nmos, geo, base, 6);
  EXPECT_NE(a.dvt, c.dvt);
}

TEST(Mismatch, PerInstanceStreamsHaveCorrectStatistics) {
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  const auto s = mismatch_sigmas(kProc.nmos, geo);
  const util::Rng base(515);
  std::vector<double> dvt;
  for (int i = 0; i < 20000; ++i) {
    dvt.push_back(
        sample_mismatch(kProc.nmos, geo, base, static_cast<std::uint64_t>(i))
            .dvt);
  }
  EXPECT_NEAR(util::mean(dvt), 0.0, s.sigma_vt * 0.05);
  EXPECT_NEAR(util::stddev(dvt), s.sigma_vt, s.sigma_vt * 0.05);
}

TEST(Mismatch, PairOffsetSigmaDominatedByVt) {
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  const double sigma = pair_offset_sigma(kProc.nmos, geo, 300.15);
  const auto s = mismatch_sigmas(kProc.nmos, geo);
  EXPECT_GT(sigma, std::sqrt(2.0) * s.sigma_vt * 0.99);
  EXPECT_LT(sigma, std::sqrt(2.0) * s.sigma_vt * 1.2);
}

TEST(Mismatch, LargerDevicesGiveSmallerPairOffset) {
  const MosGeometry small{1e-6, 1e-6, 0, 0};
  const MosGeometry big{10e-6, 10e-6, 0, 0};
  EXPECT_GT(pair_offset_sigma(kProc.nmos, small, 300.15),
            5 * pair_offset_sigma(kProc.nmos, big, 300.15));
}

}  // namespace
}  // namespace sscl::device
