#include "device/op_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "device/deck_parser.hpp"
#include "spice/engine.hpp"

namespace sscl::device {
namespace {

TEST(OpReport, CollectsNodesSourcesAndMosfets) {
  const auto deck = parse_deck(R"(report test
Vdd vdd 0 1.2
Ib vdd g 1n
M1 g g 0 0 nmos W=2u L=1u
R1 vdd r1 1meg
R2 r1 0 1meg
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  const OpReport r = collect_op_report(*deck.circuit, op);

  EXPECT_EQ(r.node_voltages.size(), 3u);  // vdd, g, r1
  ASSERT_EQ(r.source_currents.size(), 1u);
  EXPECT_EQ(r.source_currents[0].first, "Vdd");
  ASSERT_EQ(r.mosfets.size(), 1u);
  EXPECT_EQ(r.mosfets[0].name, "M1");
  EXPECT_NEAR(r.mosfets[0].id, 1e-9, 0.1e-9);
  EXPECT_TRUE(r.mosfets[0].weak_inversion);
  // gm/ID near the weak-inversion limit 1/(n UT) ~ 28.6 /V.
  EXPECT_NEAR(r.mosfets[0].gm_over_id, 28.6, 3.0);
  // Vdd delivers the mirror current plus the divider current (0.6 uA).
  EXPECT_NEAR(r.total_supply_current, 0.6e-6 + 1e-9, 0.05e-6);
}

TEST(OpReport, PrintsReadableTables) {
  const auto deck = parse_deck(R"(print test
V1 in 0 1.0
R1 in out 1k
R2 out 0 1k
)");
  spice::Engine engine(*deck.circuit);
  const spice::Solution op = engine.solve_op();
  std::ostringstream os;
  print_op_report(collect_op_report(*deck.circuit, op), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Operating point"), std::string::npos);
  EXPECT_NE(text.find("out"), std::string::npos);
  EXPECT_NE(text.find("500mV"), std::string::npos);
  EXPECT_NE(text.find("total supply current"), std::string::npos);
}

TEST(OpReport, RegionClassification) {
  const auto deck = parse_deck(R"(regions
Vdd vdd 0 1.2
Vgw gw 0 0.25
Vgs gs 0 1.1
Mweak dw gw 0 0 nmos W=2u L=1u
Mstrong ds gs 0 0 nmos W=2u L=1u
Vdw dw 0 0.6
Vds2 ds 0 0.6
)");
  spice::Engine engine(*deck.circuit);
  engine.solve_op();
  const OpReport r =
      collect_op_report(*deck.circuit, engine.solve_op());
  ASSERT_EQ(r.mosfets.size(), 2u);
  EXPECT_TRUE(r.mosfets[0].weak_inversion);
  EXPECT_FALSE(r.mosfets[1].weak_inversion);
}

}  // namespace
}  // namespace sscl::device
