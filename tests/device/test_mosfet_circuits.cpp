#include <gtest/gtest.h>

#include <cmath>

#include "device/mosfet.hpp"
#include "spice/ac.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"
#include "util/constants.hpp"

namespace sscl::device {
namespace {

using spice::Circuit;
using spice::CurrentSource;
using spice::Engine;
using spice::kGround;
using spice::NodeId;
using spice::Resistor;
using spice::Solution;
using spice::SourceSpec;
using spice::VoltageSource;

const Process kProc = Process::c180();

TEST(MosfetCircuit, DiodeConnectedSettlesToVgsForCurrent) {
  // Current source pulls 1 nA through a diode-connected NMOS; the gate
  // voltage must match ekv_vgs_for_current.
  Circuit c;
  const NodeId g = c.node("g");
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
  c.add<CurrentSource>("I1", vdd, g, SourceSpec::dc(1e-9));
  MosGeometry geo{2e-6, 1e-6, 0, 0};
  c.add<Mosfet>("M1", g, g, kGround, kGround, kProc.nmos, geo);
  Engine engine(c);
  const Solution op = engine.solve_op();
  const double expected =
      ekv_vgs_for_current(kProc.nmos, geo, 1e-9, op.v(g), 300.15);
  EXPECT_NEAR(op.v(g), expected, 2e-3);
}

TEST(MosfetCircuit, CurrentMirrorCopiesAcrossDecades) {
  // NMOS mirror: reference current into a diode-connected device, output
  // device drives a load held at 0.6 V.
  for (double iref : {1e-11, 1e-9, 1e-7}) {
    Circuit c;
    const NodeId g = c.node("g");
    const NodeId d2 = c.node("d2");
    const NodeId vdd = c.node("vdd");
    c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
    c.add<CurrentSource>("Iref", vdd, g, SourceSpec::dc(iref));
    MosGeometry geo{4e-6, 2e-6, 0, 0};
    c.add<Mosfet>("M1", g, g, kGround, kGround, kProc.nmos_hvt, geo);
    auto* m2 = c.add<Mosfet>("M2", d2, g, kGround, kGround, kProc.nmos_hvt, geo);
    c.add<VoltageSource>("Vd2", d2, kGround, SourceSpec::dc(0.6));
    Engine engine(c);
    engine.solve_op();
    EXPECT_NEAR(m2->ids() / iref, 1.0, 0.05) << "iref=" << iref;
  }
}

TEST(MosfetCircuit, MirrorRatioFollowsWidth) {
  Circuit c;
  const NodeId g = c.node("g");
  const NodeId d2 = c.node("d2");
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
  c.add<CurrentSource>("Iref", vdd, g, SourceSpec::dc(1e-9));
  c.add<Mosfet>("M1", g, g, kGround, kGround, kProc.nmos,
                MosGeometry{2e-6, 1e-6, 0, 0});
  auto* m2 = c.add<Mosfet>("M2", d2, g, kGround, kGround, kProc.nmos,
                           MosGeometry{8e-6, 1e-6, 0, 0});
  c.add<VoltageSource>("Vd2", d2, kGround, SourceSpec::dc(0.6));
  Engine engine(c);
  engine.solve_op();
  EXPECT_NEAR(m2->ids() / 1e-9, 4.0, 0.2);
}

TEST(MosfetCircuit, CommonSourceAmpDcGain) {
  // Subthreshold common-source stage with resistor load; check the DC
  // small-signal gain against gm*Rout from the model.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
  auto* vin = c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(0.0));
  const double rl = 1e8;
  c.add<Resistor>("RL", vdd, out, rl);
  MosGeometry geo{2e-6, 1e-6, 0, 0};
  auto* m1 = c.add<Mosfet>("M1", out, in, kGround, kGround, kProc.nmos, geo);

  // Bias the gate so the device pulls ~half the supply across RL.
  const double vbias = ekv_vgs_for_current(kProc.nmos, geo, 0.6 / rl, 0.6, 300.15);
  vin->set_spec(SourceSpec::dc(vbias).with_ac(1.0));

  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(out), 0.6, 0.1);

  const auto& ssp = m1->operating_point();
  const double gain_expected = ssp.gm / (1.0 / rl + ssp.gds);
  spice::AcResult res = run_ac(engine, {1.0});
  EXPECT_NEAR(res.magnitude(out)[0] / gain_expected, 1.0, 0.02);
  // Subthreshold gm/ID = 1/(n UT) = ~28/V, so gm*RL = 0.6V drop * 28/V.
  EXPECT_GT(gain_expected, 10.0);
}

TEST(MosfetCircuit, SourceFollowerLevelShift) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.5));
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(0.9));
  MosGeometry geo{4e-6, 1e-6, 0, 0};
  c.add<Mosfet>("M1", vdd, in, out, kGround, kProc.nmos, geo);
  c.add<CurrentSource>("Ibias", out, kGround, SourceSpec::dc(1e-9));
  Engine engine(c);
  const Solution op = engine.solve_op();
  const double vgs = 0.9 - op.v(out);
  // The follower sits one VGS below the input. With the bulk at ground
  // the EKV body effect raises the required VGS by (n-1)*VSB.
  const double vgs_no_body =
      ekv_vgs_for_current(kProc.nmos, geo, 1e-9, op.v(vdd) - op.v(out), 300.15);
  const double expected_vgs =
      vgs_no_body + (kProc.nmos.n - 1.0) * op.v(out);
  EXPECT_NEAR(vgs, expected_vgs, 0.02);
}

TEST(MosfetCircuit, PmosLoadBulkDrainShortedActsAsResistor) {
  // The STSCL load device: PMOS, source at VDD... in the paper's load the
  // bulk is shorted to the drain (output). Sweep the output current and
  // verify a monotonic, finite, resistor-like V(I) over a 200 mV swing.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId out = c.node("out");
  const NodeId vbp = c.node("vbp");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.0));
  auto* vb = c.add<VoltageSource>("Vbp", vbp, kGround, SourceSpec::dc(0.0));
  MosGeometry geo{1e-6, 4e-6, 0, 0};
  c.add<Mosfet>("ML", out, vbp, vdd, out, kProc.pmos, geo);
  auto* iload = c.add<CurrentSource>("IL", out, kGround, SourceSpec::dc(0.0));

  // Find a gate bias where the device carries 1 nA with a 0.2 V drop.
  // (Replica bias would do this automatically; here: crude manual scan
  // from strongly-on, raising the gate until the drop reaches 0.2 V.)
  Engine engine(c);
  double chosen_vbp = -0.4;
  iload->set_spec(SourceSpec::dc(1e-9));
  for (double vg = -0.4; vg < 0.95; vg += 0.01) {
    vb->set_spec(SourceSpec::dc(vg));
    const Solution op = engine.solve_op();
    if (op.v(vdd) - op.v(out) >= 0.2) {
      chosen_vbp = vg;
      break;
    }
  }
  vb->set_spec(SourceSpec::dc(chosen_vbp));

  // Now sweep the load current 0 -> 1 nA and require monotonic drop.
  double prev_drop = -1.0;
  for (double i = 0.0; i <= 1.001e-9; i += 0.2e-9) {
    iload->set_spec(SourceSpec::dc(i));
    const Solution op = engine.solve_op();
    const double drop = op.v(vdd) - op.v(out);
    EXPECT_GT(drop, prev_drop - 1e-6);
    prev_drop = drop;
    EXPECT_LT(drop, 0.35);
  }
  EXPECT_NEAR(prev_drop, 0.2, 0.05);
}

TEST(MosfetCircuit, GateCapacitanceReported) {
  Circuit c;
  MosGeometry geo{2e-6, 1e-6, 0, 0};
  auto* m = c.add<Mosfet>("M1", c.node("d"), c.node("g"), kGround, kGround,
                          kProc.nmos, geo);
  // cgs + cgd + cgb > overlap-only floor and below full channel cap.
  const double c_channel = kProc.nmos.cox * geo.w * geo.l;
  const double c_overlap = kProc.nmos.cov * geo.w;
  EXPECT_GT(m->gate_capacitance(), 2 * c_overlap);
  EXPECT_LT(m->gate_capacitance(), c_channel + 3 * c_overlap);
}

TEST(MosfetCircuit, InverterSwitchesInTransient) {
  // Resistor-load NMOS inverter driven by a pulse: output must swing.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
  c.add<VoltageSource>("Vin", in, kGround,
                       SourceSpec::pulse(0.0, 1.2, 1e-6, 10e-9, 10e-9, 5e-6));
  c.add<Resistor>("RL", vdd, out, 1e6);
  c.add<Mosfet>("M1", out, in, kGround, kGround, kProc.nmos,
                MosGeometry{4e-6, 0.5e-6, 0, 0});
  Engine engine(c);
  spice::TransientOptions opts;
  opts.tstop = 10e-6;
  const auto w = run_transient(engine, opts);
  EXPECT_GT(w.at(out, 0.9e-6), 1.1);   // high before the pulse
  EXPECT_LT(w.at(out, 5.0e-6), 0.15);  // pulled low during the pulse
  EXPECT_GT(w.at(out, 9.9e-6), 1.0);   // recovers
}

TEST(MosfetCircuit, JunctionDiodesLeakWhenForward) {
  // NMOS with source junction area: pulling the bulk above the source
  // forward-biases the junction and conducts.
  Circuit c;
  const NodeId b = c.node("b");
  MosGeometry geo{2e-6, 1e-6, 4e-12, 4e-12};
  c.add<Mosfet>("M1", c.node("d"), kGround, kGround, b, kProc.nmos, geo);
  c.add<VoltageSource>("Vd", c.node("d"), kGround, SourceSpec::dc(0.5));
  auto* vb = c.add<VoltageSource>("Vb", b, kGround, SourceSpec::dc(0.7));
  Engine engine(c);
  const Solution op = engine.solve_op();
  // Bulk source current must be significant (junction forward).
  EXPECT_GT(std::fabs(op.branch_current(vb->branch())), 1e-9);
}

}  // namespace
}  // namespace sscl::device
