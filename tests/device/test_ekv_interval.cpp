// Containment tests for the interval EKV evaluator: for random terminal
// boxes, random points inside them and random temperatures inside the
// temperature box, the scalar model evaluated on the card re-derived by
// Process::at_temperature must land inside every interval output. Also
// covers inclusion isotonicity (nested boxes give nested results) and
// the alias-collapsing refs entry point (a bulk-drain-shorted device
// evaluated with the exact ud = 0 is tighter than, and consistent with,
// the alias-oblivious wrapper).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "device/ekv.hpp"
#include "device/mos_params.hpp"
#include "util/interval.hpp"
#include "util/rng.hpp"

namespace sscl::device {
namespace {

using util::Interval;

Interval random_box(util::Rng& rng, double lo, double hi) {
  return Interval::make(rng.uniform(lo, hi), rng.uniform(lo, hi));
}

double point_in(util::Rng& rng, const Interval& iv) {
  return iv.is_point() ? iv.lo : rng.uniform(iv.lo, iv.hi);
}

/// Relative+absolute slack for the containment asserts: the interval
/// evaluator is outward conservative by construction but plain double
/// arithmetic can disagree in the last ulps.
void expect_contains(const Interval& box, double v, const char* what) {
  const double slack =
      1e-9 * std::max({std::fabs(box.lo), std::fabs(box.hi), std::fabs(v), 1.0});
  EXPECT_TRUE(box.pad(slack).contains(v))
      << what << ": " << v << " outside [" << box.lo << ", " << box.hi << "]";
}

TEST(EkvInterval, ContainsScalarAcrossRandomBoxesAndTemperatures) {
  const Process process = Process::c180();
  const MosParams cards[] = {process.nmos, process.pmos, process.nmos_hvt};
  const MosGeometry geom{2e-6, 0.5e-6};
  const MosMismatch no_mismatch;
  util::Rng rng(42);

  for (int i = 0; i < 3000; ++i) {
    const MosParams& card = cards[i % 3];
    const Interval vg = random_box(rng, -0.2, 1.2);
    const Interval vd = random_box(rng, -0.2, 1.2);
    const Interval vs = random_box(rng, -0.2, 1.2);
    const Interval vb = random_box(rng, -0.2, 1.2);
    const Interval tbox = Interval::make(rng.uniform(250.0, 400.0),
                                         rng.uniform(250.0, 400.0));

    const EkvIntervalResult r = ekv_evaluate_interval(
        card, geom, vg, vd, vs, vb, tbox, process.temperature);

    for (int k = 0; k < 8; ++k) {
      const double t = point_in(rng, tbox);
      // Re-derive the card at t exactly the way the platform does.
      const double dvt = -1.0e-3 * (t - process.temperature);
      const double kp_scale = std::pow(t / process.temperature, -1.5);
      MosParams card_t = card;
      card_t.vt0 += dvt;
      card_t.kp *= kp_scale;

      const double pg = point_in(rng, vg);
      const double pd = point_in(rng, vd);
      const double ps = point_in(rng, vs);
      const double pb = point_in(rng, vb);
      const EkvResult sp =
          ekv_evaluate(card_t, geom, no_mismatch, pg, pd, ps, pb, t);
      expect_contains(r.id, sp.id, "id");
      expect_contains(r.i_f, sp.i_f, "i_f");
      expect_contains(r.i_r, sp.i_r, "i_r");
      expect_contains(r.ispec, sp.ispec, "ispec");
    }
  }
}

TEST(EkvInterval, PointBoxesReproduceScalar) {
  const Process process = Process::c180();
  const MosGeometry geom{1e-6, 1e-6};
  const MosMismatch no_mismatch;
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double vg = rng.uniform(-0.2, 1.2);
    const double vd = rng.uniform(-0.2, 1.2);
    const double vs = rng.uniform(-0.2, 1.2);
    const double vb = rng.uniform(-0.2, 1.2);
    const MosParams& card = (i % 2) ? process.nmos : process.pmos;
    const EkvResult s = ekv_evaluate(card, geom, no_mismatch, vg, vd, vs, vb,
                                     process.temperature);
    const EkvIntervalResult r = ekv_evaluate_interval(
        card, geom, Interval::point(vg), Interval::point(vd),
        Interval::point(vs), Interval::point(vb),
        Interval::point(process.temperature), process.temperature);
    EXPECT_NEAR(r.id.lo, s.id, 1e-15 + 1e-9 * std::fabs(s.id));
    EXPECT_NEAR(r.id.hi, s.id, 1e-15 + 1e-9 * std::fabs(s.id));
    EXPECT_NEAR(r.i_f.mid(), s.i_f, 1e-9 * std::max(1.0, s.i_f));
  }
}

TEST(EkvInterval, InclusionIsotone) {
  const Process process = Process::c180();
  const MosGeometry geom{2e-6, 1e-6};
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Interval vg = random_box(rng, -0.2, 1.2);
    const Interval vd = random_box(rng, -0.2, 1.2);
    const Interval vs = random_box(rng, -0.2, 1.2);
    const Interval vb = random_box(rng, -0.2, 1.2);
    const Interval tbox = Interval::make(260.0, 390.0);
    const auto shrink = [&](const Interval& iv) {
      const double a = point_in(rng, iv);
      const double b = point_in(rng, iv);
      return Interval::make(a, b);
    };
    const MosParams& card = (i % 2) ? process.nmos_hvt : process.pmos;
    const EkvIntervalResult wide = ekv_evaluate_interval(
        card, geom, vg, vd, vs, vb, tbox, process.temperature);
    const EkvIntervalResult narrow = ekv_evaluate_interval(
        card, geom, shrink(vg), shrink(vd), shrink(vs), shrink(vb),
        Interval::make(280.0, 330.0), process.temperature);
    const double slack = 1e-9 * std::max(std::fabs(wide.id.lo),
                                         std::fabs(wide.id.hi)) + 1e-18;
    EXPECT_TRUE(wide.id.pad(slack).contains(narrow.id));
    EXPECT_TRUE(wide.i_f.pad(1e-9 * std::max(1.0, wide.i_f.hi))
                    .contains(narrow.i_f));
  }
}

TEST(EkvInterval, RefsEntryPointCollapsesAliasedTerminals) {
  // A bulk-drain-shorted PMOS load over a wide drain box: the wrapper
  // widens vd - vb to a nonzero interval, while the refs entry point
  // pins ud = 0 exactly. The refs result must stay a subset of the
  // wrapper's and, crucially, keep the reverse inversion coefficient
  // finite where the wrapper blows up to +inf.
  const Process process = Process::c180();
  const MosParams card = process.pmos;
  const MosGeometry geom{0.3e-6, 1.2e-6};
  const Interval tbox = Interval::point(process.temperature);

  // A half-diagnosed output node as the analyzer sees it mid-refinement:
  // upper bound proved, lower bound still unknown.
  const Interval out{-std::numeric_limits<double>::infinity(), 0.8};
  const Interval vg = Interval::point(0.77);
  const Interval vs = Interval::point(1.0);

  const EkvIntervalResult oblivious = ekv_evaluate_interval(
      card, geom, vg, /*vd=*/out, vs, /*vb=*/out, tbox, process.temperature);

  const double sign = -1.0;  // PMOS reflection
  const Interval ug = (vg - out) * sign;
  const Interval ud = Interval::point(0.0);  // d == b: exact alias
  const Interval us = (vs - out) * sign;
  const EkvIntervalResult aware = ekv_evaluate_interval_refs(
      card, geom, ug, ud, us, (out - vs) * sign, tbox, process.temperature);

  // The alias-aware reverse coefficient is F(vp/ut), bounded by the
  // gate overdrive; the oblivious one sees ud unbounded and explodes.
  EXPECT_TRUE(std::isfinite(aware.i_r.hi));
  EXPECT_FALSE(std::isfinite(oblivious.i_r.hi));
  // Subset: collapsing an alias only removes spurious corner points.
  EXPECT_TRUE(oblivious.i_r.contains(aware.i_r));
  EXPECT_TRUE(oblivious.id.pad(1e-18).contains(aware.id));

  // Scalar containment still holds for the aware result at points with
  // vd == vb (the only points the alias admits).
  util::Rng rng(3);
  const MosMismatch no_mismatch;
  for (int k = 0; k < 200; ++k) {
    const double v = rng.uniform(-10.0, out.hi);
    const EkvResult s = ekv_evaluate(card, geom, no_mismatch, vg.lo, v, vs.lo,
                                     v, process.temperature);
    const double slack = 1e-12 + 1e-9 * std::fabs(s.id);
    EXPECT_TRUE(aware.id.pad(slack).contains(s.id)) << "vd=vb=" << v;
    EXPECT_TRUE(aware.i_r.pad(1e-9).contains(s.i_r));
  }
}

}  // namespace
}  // namespace sscl::device
