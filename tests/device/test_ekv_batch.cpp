#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "device/ekv.hpp"
#include "device/ekv_batch.hpp"
#include "device/mismatch.hpp"
#include "device/mos_params.hpp"
#include "util/rng.hpp"

namespace sscl::device {
namespace {

/// ULP distance between two finite doubles of the same sign region.
std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  // Map to a monotone integer line so distance works across zero.
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  const std::int64_t d = ia > ib ? ia - ib : ib - ia;
  return static_cast<std::uint64_t>(d);
}

void expect_ulp(double batch, double scalar, const char* what, int lane) {
  ASSERT_TRUE(std::isfinite(batch)) << what << " lane " << lane;
  EXPECT_LE(ulp_distance(batch, scalar), 4u)
      << what << " lane " << lane << ": batch=" << batch
      << " scalar=" << scalar;
}

EkvSoA random_operating_lanes(const MosParams& params,
                              const MosGeometry& geometry, int lanes,
                              std::uint64_t seed) {
  EkvSoA soa;
  soa.resize(lanes);
  util::Rng rng(seed);
  const double sigma_vt = params.avt / std::sqrt(geometry.w * geometry.l);
  const double sigma_b = params.abeta / std::sqrt(geometry.w * geometry.l);
  for (int k = 0; k < lanes; ++k) {
    soa.dvt[k] = rng.gaussian(0.0, sigma_vt);
    soa.dbeta_rel[k] = rng.gaussian(0.0, sigma_b);
    // Subthreshold through moderate inversion, forward and reverse, with
    // nonzero source/bulk voltages so every partial derivative matters.
    soa.vg[k] = rng.uniform(0.0, 0.9);
    soa.vd[k] = rng.uniform(0.0, 1.2);
    soa.vs[k] = rng.uniform(0.0, 0.4);
    soa.vb[k] = rng.uniform(-0.1, 0.1);
  }
  return soa;
}

/// The batched evaluator must reproduce the scalar model lane for lane:
/// same id and all four conductances within a few ULP, and the Newton
/// companion current assembled from those exact values.
TEST(EkvBatch, LanesMatchScalarEvaluationWithinUlps) {
  const Process proc = Process::c180();
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  for (const MosParams* params : {&proc.nmos, &proc.pmos, &proc.nmos_hvt}) {
    const int lanes = 64;
    EkvSoA soa = random_operating_lanes(*params, geo, lanes, 0x5eed);
    ekv_evaluate_batch(*params, geo, proc.temperature, soa);
    for (int k = 0; k < lanes; ++k) {
      const MosMismatch mm{soa.dvt[k], soa.dbeta_rel[k]};
      const EkvResult r = ekv_evaluate(*params, geo, mm, soa.vg[k], soa.vd[k],
                                       soa.vs[k], soa.vb[k], proc.temperature);
      expect_ulp(soa.id[k], r.id, "id", k);
      expect_ulp(soa.gm[k], r.gm, "gm", k);
      expect_ulp(soa.gds[k], r.gds, "gds", k);
      expect_ulp(soa.gms[k], r.gms, "gms", k);
      expect_ulp(soa.gmb[k], r.gmb, "gmb", k);
      const double ieq = r.id - (r.gm * soa.vg[k] + r.gds * soa.vd[k] -
                                 r.gms * soa.vs[k] + r.gmb * soa.vb[k]);
      expect_ulp(soa.ieq[k], ieq, "ieq", k);
    }
  }
}

/// The mask must not change the arithmetic of active lanes (the ensemble
/// determinism contract: a lane's values are independent of which other
/// lanes are still converging) and must leave inactive lanes untouched.
TEST(EkvBatch, MaskNeverPerturbsActiveLanes) {
  const Process proc = Process::c180();
  const MosGeometry geo{4e-6, 2e-6, 0, 0};
  const int lanes = 48;
  EkvSoA full = random_operating_lanes(proc.nmos, geo, lanes, 0xa5a5);
  EkvSoA masked = full;  // same inputs
  ekv_evaluate_batch(proc.nmos, geo, proc.temperature, full);

  std::vector<char> active(lanes, 0);
  const double sentinel = -1234.5;
  for (int k = 0; k < lanes; ++k) {
    active[k] = (k % 3 == 0) ? 1 : 0;
    masked.id[k] = masked.gm[k] = masked.gds[k] = sentinel;
    masked.gms[k] = masked.gmb[k] = masked.ieq[k] = sentinel;
  }
  ekv_evaluate_batch(proc.nmos, geo, proc.temperature, masked, active);
  for (int k = 0; k < lanes; ++k) {
    if (active[k]) {
      EXPECT_EQ(masked.id[k], full.id[k]) << k;
      EXPECT_EQ(masked.gm[k], full.gm[k]) << k;
      EXPECT_EQ(masked.gds[k], full.gds[k]) << k;
      EXPECT_EQ(masked.gms[k], full.gms[k]) << k;
      EXPECT_EQ(masked.gmb[k], full.gmb[k]) << k;
      EXPECT_EQ(masked.ieq[k], full.ieq[k]) << k;
    } else {
      EXPECT_EQ(masked.id[k], sentinel) << k;
      EXPECT_EQ(masked.ieq[k], sentinel) << k;
    }
  }
}

/// The parameter-slot sampler: lane k must hold exactly the pure-fork
/// draw sample_mismatch(base.fork(first_sample + k), instance), so a
/// lane is independent of the block it lands in.
TEST(EkvBatchEnsemble, SampleMismatchLanesEqualsPureForkDraws) {
  const Process proc = Process::c180();
  const MosGeometry geo{2e-6, 1e-6, 0, 0};
  const util::Rng base(42);
  const std::uint64_t first = 37;
  const std::uint64_t instance = 3;
  const int count = 29;
  std::vector<double> dvt(count), dbeta(count);
  sample_mismatch_lanes(proc.nmos, geo, base, first, instance, count,
                        dvt.data(), dbeta.data());
  for (int k = 0; k < count; ++k) {
    const MosMismatch mm = sample_mismatch(
        proc.nmos, geo, base.fork(first + static_cast<std::uint64_t>(k)),
        instance);
    EXPECT_EQ(dvt[k], mm.dvt) << k;
    EXPECT_EQ(dbeta[k], mm.dbeta_rel) << k;
  }

  // Block-independence: re-sampling a shifted window reproduces the
  // overlapping lanes bit for bit.
  std::vector<double> dvt2(count), dbeta2(count);
  sample_mismatch_lanes(proc.nmos, geo, base, first + 10, instance, count,
                        dvt2.data(), dbeta2.data());
  for (int k = 0; k + 10 < count; ++k) {
    EXPECT_EQ(dvt2[k], dvt[k + 10]) << k;
    EXPECT_EQ(dbeta2[k], dbeta[k + 10]) << k;
  }
}

}  // namespace
}  // namespace sscl::device
