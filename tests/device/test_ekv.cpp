#include "device/ekv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/constants.hpp"

namespace sscl::device {
namespace {

const Process kProc = Process::c180();
const MosGeometry kGeo{2e-6, 1e-6, 0, 0};
const MosMismatch kNoMm;
constexpr double kT = 300.15;

TEST(EkvF, AsymptoticBehaviour) {
  // Weak inversion: F(v) ~ e^v (asymptotically as v -> -inf).
  for (double v : {-30.0, -25.0, -20.0}) {
    EXPECT_NEAR(ekv_f(v) / std::exp(v), 1.0, 1e-3) << v;
  }
  // Strong inversion: F(v) ~ (v/2)^2.
  for (double v : {40.0, 100.0, 500.0}) {
    EXPECT_NEAR(ekv_f(v) / (v * v / 4.0), 1.0, 0.15) << v;
  }
  // Continuity across the overflow guard at u = 40 (v = 80).
  EXPECT_NEAR(ekv_f(79.9999), ekv_f(80.0001), 1e-2);
}

TEST(EkvF, DerivativeMatchesFiniteDifference) {
  for (double v : {-25.0, -5.0, -1.0, 0.0, 1.0, 5.0, 30.0, 90.0}) {
    const double h = 1e-6;
    const double fd = (ekv_f(v + h) - ekv_f(v - h)) / (2 * h);
    EXPECT_NEAR(ekv_f_derivative(v), fd, std::max(1e-9, 1e-6 * std::fabs(fd)))
        << "v=" << v;
  }
}

TEST(Ekv, SubthresholdExponentialSlope) {
  // In weak inversion, ID multiplies by 10 every n*UT*ln(10) of VGS.
  const double swing = subthreshold_swing(kProc.nmos, kT);
  const double vgs0 = 0.05;  // deep weak inversion, far below VT = 0.45
  const EkvResult r1 = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vgs0, 0.5, 0, 0, kT);
  const EkvResult r2 =
      ekv_evaluate(kProc.nmos, kGeo, kNoMm, vgs0 + swing, 0.5, 0, 0, kT);
  EXPECT_NEAR(r2.id / r1.id, 10.0, 0.15);
}

TEST(Ekv, SaturationCurrentIndependentOfVds) {
  // For VDS >> 4UT the reverse term vanishes (before CLM).
  const EkvResult ra = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.3, 0.3, 0, 0, kT);
  const EkvResult rb = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.3, 0.6, 0, 0, kT);
  // Only lambda contributes: ratio = (1+lambda*0.6)/(1+lambda*0.3).
  const double expected =
      (1 + kProc.nmos.lambda * 0.6) / (1 + kProc.nmos.lambda * 0.3);
  EXPECT_NEAR(rb.id / ra.id, expected, 1e-3);
}

TEST(Ekv, LinearRegionConductance) {
  // Tiny VDS: ID ~ VDS * gds(0), device acts as a resistor.
  const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.35, 1e-4, 0, 0, kT);
  EXPECT_NEAR(r.id / 1e-4, r.gds, r.gds * 0.02);
}

TEST(Ekv, CurrentVanishesAtZeroVds) {
  const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.4, 0.0, 0.0, 0, kT);
  EXPECT_NEAR(r.id, 0.0, 1e-18);
}

TEST(Ekv, SymmetryUnderSourceDrainExchange) {
  const EkvResult fwd = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.4, 0.2, 0.05, 0, kT);
  const EkvResult rev = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.4, 0.05, 0.2, 0, kT);
  EXPECT_NEAR(fwd.id, -rev.id, std::fabs(fwd.id) * 0.02);
}

TEST(Ekv, PmosMirrorsNmos) {
  // PMOS with reflected voltages should conduct the mirrored current.
  MosParams pmos = kProc.nmos;  // same parameters, flipped type
  pmos.is_nmos = false;
  const EkvResult n = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.4, 0.3, 0, 0, kT);
  const EkvResult p = ekv_evaluate(pmos, kGeo, kNoMm, -0.4, -0.3, 0, 0, kT);
  EXPECT_NEAR(p.id, -n.id, std::fabs(n.id) * 1e-9);
}

TEST(Ekv, PartialDerivativesMatchFiniteDifference) {
  const double vg = 0.38, vd = 0.25, vs = 0.03, vb = 0.0;
  const double h = 1e-7;
  const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vg, vd, vs, vb, kT);

  auto id_at = [&](double g, double d, double s, double b) {
    return ekv_evaluate(kProc.nmos, kGeo, kNoMm, g, d, s, b, kT).id;
  };
  const double gm_fd = (id_at(vg + h, vd, vs, vb) - id_at(vg - h, vd, vs, vb)) / (2 * h);
  const double gds_fd = (id_at(vg, vd + h, vs, vb) - id_at(vg, vd - h, vs, vb)) / (2 * h);
  const double gms_fd = -(id_at(vg, vd, vs + h, vb) - id_at(vg, vd, vs - h, vb)) / (2 * h);
  const double gmb_fd = (id_at(vg, vd, vs, vb + h) - id_at(vg, vd, vs, vb - h)) / (2 * h);

  EXPECT_NEAR(r.gm, gm_fd, std::fabs(gm_fd) * 1e-4 + 1e-18);
  EXPECT_NEAR(r.gds, gds_fd, std::fabs(gds_fd) * 1e-4 + 1e-18);
  EXPECT_NEAR(r.gms, gms_fd, std::fabs(gms_fd) * 1e-4 + 1e-18);
  EXPECT_NEAR(r.gmb, gmb_fd, std::fabs(gmb_fd) * 1e-4 + 1e-18);
}

TEST(Ekv, PmosPartialDerivativesMatchFiniteDifference) {
  const double vg = 0.6, vd = 0.7, vs = 1.0, vb = 1.0;  // PMOS conducting
  const double h = 1e-7;
  const EkvResult r = ekv_evaluate(kProc.pmos, kGeo, kNoMm, vg, vd, vs, vb, kT);
  auto id_at = [&](double g, double d, double s, double b) {
    return ekv_evaluate(kProc.pmos, kGeo, kNoMm, g, d, s, b, kT).id;
  };
  const double gm_fd = (id_at(vg + h, vd, vs, vb) - id_at(vg - h, vd, vs, vb)) / (2 * h);
  const double gds_fd = (id_at(vg, vd + h, vs, vb) - id_at(vg, vd - h, vs, vb)) / (2 * h);
  EXPECT_NEAR(r.gm, gm_fd, std::fabs(gm_fd) * 1e-4 + 1e-18);
  EXPECT_NEAR(r.gds, gds_fd, std::fabs(gds_fd) * 1e-4 + 1e-18);
  EXPECT_LT(r.id, 0.0);  // conducting PMOS drain current is negative
}

TEST(Ekv, VtMismatchShiftsCurrent) {
  MosMismatch mm;
  mm.dvt = 0.026 * kProc.nmos.n;  // one n*UT upward shift
  const EkvResult base = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.3, 0.4, 0, 0, kT);
  const EkvResult shifted = ekv_evaluate(kProc.nmos, kGeo, mm, 0.3, 0.4, 0, 0, kT);
  EXPECT_NEAR(shifted.id / base.id, std::exp(-1.0), 0.02);
}

TEST(Ekv, BetaMismatchScalesCurrent) {
  MosMismatch mm;
  mm.dbeta_rel = 0.05;
  const EkvResult base = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.3, 0.4, 0, 0, kT);
  const EkvResult scaled = ekv_evaluate(kProc.nmos, kGeo, mm, 0.3, 0.4, 0, 0, kT);
  EXPECT_NEAR(scaled.id / base.id, 1.05, 1e-6);
}

TEST(Ekv, VgsForCurrentRoundTrip) {
  for (double target : {1e-12, 1e-10, 1e-9, 1e-7}) {
    const double vgs =
        ekv_vgs_for_current(kProc.nmos, kGeo, target, 0.5, kT);
    const EkvResult r = ekv_evaluate(kProc.nmos, kGeo, kNoMm, vgs, 0.5, 0, 0, kT);
    EXPECT_NEAR(r.id / target, 1.0, 1e-4) << target;
  }
}

TEST(Ekv, TemperatureRaisesSubthresholdCurrent) {
  // Same VGS below threshold conducts more at higher T (UT grows and the
  // normalised overdrive shrinks in magnitude).
  const EkvResult cold =
      ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.25, 0.4, 0, 0, 273.15);
  const EkvResult hot =
      ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.25, 0.4, 0, 0, 360.15);
  EXPECT_GT(hot.id, cold.id * 3);
}

TEST(Ekv, SpecificCurrentScalesWithGeometry) {
  MosGeometry wide{8e-6, 1e-6, 0, 0};
  const EkvResult narrow = ekv_evaluate(kProc.nmos, kGeo, kNoMm, 0.3, 0.4, 0, 0, kT);
  const EkvResult big = ekv_evaluate(kProc.nmos, wide, kNoMm, 0.3, 0.4, 0, 0, kT);
  EXPECT_NEAR(big.id / narrow.id, 4.0, 1e-6);
  EXPECT_NEAR(big.ispec / narrow.ispec, 4.0, 1e-9);
}

}  // namespace
}  // namespace sscl::device
