#include "sta/crosscheck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "digital/encoder.hpp"

namespace sscl::sta {
namespace {

// Issue acceptance: the analytic fmax tracks the event-simulated one to
// within 10% at bias currents spanning the paper's 1 nA – 100 nA
// subthreshold tuning range, while finishing orders of magnitude
// faster. The sim-capture mode models the simulator's latch-commit
// semantics (tokens wave-pipeline through transparent latches), which is
// what makes sub-10% agreement possible.
class CrossCheckTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossCheckTest, StaTracksEventSimWithin10Percent) {
  digital::Netlist nl;
  const digital::EncoderIo io = digital::build_fai_encoder(nl);
  const stscl::SclModel model;

  StaOptions opt;
  opt.mode = StaMode::kSimCapture;
  opt.input_arrival_frac = 0.05;  // the fmax testbench applies data there
  const FmaxCrossCheck xc =
      crosscheck_encoder_fmax(nl, io, model, GetParam(), opt);

  EXPECT_GT(xc.f_sim, 0.0);
  EXPECT_GT(xc.f_sta, 0.0);
  EXPECT_TRUE(xc.agrees(0.10))
      << "iss " << xc.iss << ": sta " << xc.f_sta << " Hz vs sim "
      << xc.f_sim << " Hz (ratio " << xc.ratio << ")";
  // Wall-clock advantage. The issue demands >= 100x on a quiet machine;
  // assert a generous floor so sanitizer builds and loaded CI runners
  // don't flake — the magnitude claim is exercised by sscl-sta --check.
  EXPECT_GT(xc.speedup, 10.0)
      << "sta " << xc.sta_seconds << " s vs sim " << xc.sim_seconds << " s";
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, CrossCheckTest,
                         ::testing::Values(1e-9, 1e-8, 1e-7));

TEST(CrossCheck, FmaxScalesLinearlyWithBias) {
  // td ~ 1/Iss, so both engines' fmax must scale ~linearly in Iss; check
  // the analytic side across a decade without re-running the simulator.
  digital::Netlist nl;
  digital::build_fai_encoder(nl);
  const stscl::SclModel model;
  StaOptions opt;
  opt.mode = StaMode::kSimCapture;
  opt.input_arrival_frac = 0.05;
  const double f1 = sta_fmax(nl, model, 1e-9, opt);
  const double f10 = sta_fmax(nl, model, 1e-8, opt);
  EXPECT_NEAR(f10 / f1, 10.0, 0.2);
}

}  // namespace
}  // namespace sscl::sta
