#include "sta/timing_graph.hpp"

#include <gtest/gtest.h>

#include "digital/netlist.hpp"

namespace sscl::sta {
namespace {

using digital::GateKind;
using digital::Netlist;
using digital::Ref;

stscl::SclModel model() { return stscl::SclModel{}; }

TEST(TimingGraph, LevelizesTwoStagePipeline) {
  Netlist nl;
  nl.clock();
  const auto a = nl.input("a");
  const auto b = nl.input("b");
  const auto x = nl.and2(a, b, "x");
  const auto y = nl.buf(x, "y");
  const auto l1 = nl.latch(y, true, "l1");
  const auto z = nl.buf(l1, "z");
  const auto l2 = nl.latch(z, false, "l2");
  (void)l2;

  const TimingGraph tg = build_timing_graph(nl, model(), 1e-9);
  EXPECT_FALSE(tg.has_feedback);
  EXPECT_EQ(tg.max_rank, 2);
  EXPECT_EQ(tg.max_depth, 3);  // and2 -> buf -> latch
  ASSERT_EQ(tg.latches.size(), 2u);

  const int gl1 = nl.driver_of(l1);
  EXPECT_EQ(tg.gate[gl1].rank, 1);
  EXPECT_EQ(tg.gate[gl1].depth, 3);
  const int gl2 = tg.latches[1];
  EXPECT_EQ(tg.gate[gl2].rank, 2);
  EXPECT_EQ(tg.gate[gl2].depth, 2);  // buf -> latch after the boundary
}

TEST(TimingGraph, FanoutAwareLoadsMatchModel) {
  Netlist nl;
  nl.clock();
  const auto a = nl.input("a");
  const auto x = nl.buf(a, "x");  // drives 3 gate inputs below
  const auto c0 = nl.buf(x, "c0");
  nl.and2(x, x, "c1");  // two inputs of the same gate count twice
  const TimingGraph tg = build_timing_graph(nl, model(), 1e-9);

  const int gx = nl.driver_of(x);
  EXPECT_EQ(tg.gate[gx].fanout, 3);
  EXPECT_DOUBLE_EQ(tg.gate[gx].load_cap, model().load_cap(3));
  EXPECT_DOUBLE_EQ(tg.gate[gx].delay, model().delay(1e-9, 3));

  // Unloaded outputs are clamped to the fanout-1 (intrinsic) load.
  const int gc0 = nl.driver_of(c0);
  EXPECT_EQ(tg.gate[gc0].fanout, 0);
  EXPECT_DOUBLE_EQ(tg.gate[gc0].load_cap, model().load_cap(0));
  EXPECT_DOUBLE_EQ(model().load_cap(0), model().load_cap(1));
}

TEST(TimingGraph, KindFactorScalesDelay) {
  Netlist nl;
  nl.clock();
  const auto a = nl.input("a");
  const auto x = nl.maj3(a, a, a, "x");
  nl.buf(x, "c");  // one consumer: x runs at the fanout-1 load
  StaOptions opt;
  opt.kind_factor[static_cast<int>(GateKind::kMaj3)] = 2.5;
  const TimingGraph tg = build_timing_graph(nl, model(), 1e-9, opt);
  const int gx = nl.driver_of(x);
  EXPECT_DOUBLE_EQ(tg.gate[gx].delay, 2.5 * model().delay(1e-9, 1));
}

TEST(TimingGraph, CombinationalLoopThrows) {
  Netlist nl;
  nl.clock();
  const auto w = nl.signal("w");
  const auto x = nl.buf(w, "x");
  digital::Gate g;
  g.kind = GateKind::kBuf;
  g.in[0] = Ref(x);
  g.out = w;
  g.name = "loopback";
  nl.add_gate(g);
  EXPECT_THROW(build_timing_graph(nl, model(), 1e-9), StaError);
}

TEST(TimingGraph, LatchFeedbackLoopIsLegal) {
  Netlist nl;
  nl.clock();
  const auto q = nl.signal("q");
  const auto l = nl.latch(Ref(q, true), true, "toggle");
  digital::Gate g;
  g.kind = GateKind::kBuf;
  g.in[0] = Ref(l);
  g.out = q;
  g.name = "fb";
  nl.add_gate(g);

  const TimingGraph tg = build_timing_graph(nl, model(), 1e-9);
  EXPECT_TRUE(tg.has_feedback);
  EXPECT_EQ(tg.order.size(), nl.gates().size());
}

TEST(TimingGraph, UnconnectedInputThrows) {
  Netlist nl;
  nl.clock();
  digital::Gate g;
  g.kind = GateKind::kAnd2;
  g.in[0] = Ref(nl.input("a"));
  g.in[1] = Ref();  // kNoSignal
  g.out = nl.signal("x");
  g.name = "broken";
  nl.add_gate(g);
  EXPECT_THROW(build_timing_graph(nl, model(), 1e-9), StaError);
}

TEST(TimingGraph, LatchWithoutClockThrows) {
  Netlist nl;  // no clock() call
  const auto a = nl.input("a");
  digital::Gate g;
  g.kind = GateKind::kLatch;
  g.in[0] = Ref(a);
  g.out = nl.signal("q");
  g.name = "l";
  nl.add_gate(g);
  EXPECT_THROW(build_timing_graph(nl, model(), 1e-9), StaError);
}

}  // namespace
}  // namespace sscl::sta
