#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "digital/encoder.hpp"
#include "digital/netlist.hpp"

namespace sscl::sta {
namespace {

using digital::Netlist;

// All gates in these hand-built chains run at the calibration load
// (fanout 1; unloaded outputs are clamped to it), so every delay is d.
double unit_delay(const stscl::SclModel& m, double iss) {
  return m.delay(iss, 1);
}

/// in -> L1(H) -> n_buf buffers -> L2(L). The classic fmax of this chain
/// is 1 / ((n_buf + 2) * d): the L-phase capture window closes a full
/// period after the H-phase launch window opens, so the logic may borrow
/// straight through the phase boundary.
Netlist borrowing_chain(int n_buf, digital::SignalId* l2_out = nullptr) {
  Netlist nl;
  nl.clock();
  auto s = nl.latch(nl.input("a"), true, "l1");
  for (int i = 0; i < n_buf; ++i) s = nl.buf(s, "b" + std::to_string(i));
  s = nl.latch(s, false, "l2");
  if (l2_out) *l2_out = s;
  return nl;
}

TEST(StaClassic, BorrowingChainFmaxIsTotalPathDelay) {
  const stscl::SclModel m;
  const double iss = 1e-9;
  const double d = unit_delay(m, iss);
  const Netlist nl = borrowing_chain(4);

  const double f = sta_fmax(nl, m, iss);
  EXPECT_NEAR(f * 6.0 * d, 1.0, 0.01);  // 1/(d_L1 + 4 d_buf + d_L2)

  // At that clock the capture latch borrows past its phase boundary:
  // data arrives after the window opens, with essentially zero slack.
  const TimingReport rep = analyze(nl, m, iss, 1.0 / f);
  ASSERT_TRUE(rep.feasible);
  ASSERT_EQ(rep.latches.size(), 2u);
  const LatchTiming& l2 = rep.latches.back();
  EXPECT_EQ(l2.name, "l2");
  EXPECT_GT(l2.arrival, l2.open);          // borrowing in progress
  EXPECT_LT(l2.slack, 0.02 * rep.period);  // ... and nearly exhausted
  EXPECT_NEAR(l2.close, rep.period, 1e-9 * rep.period);
}

TEST(StaClassic, SamePhaseLatchesShareTheWindow) {
  const stscl::SclModel m;
  const double iss = 1e-9;
  const double d = unit_delay(m, iss);

  Netlist same;
  same.clock();
  same.latch(same.latch(same.input("a"), true, "l1"), true, "l2");
  Netlist alt;
  alt.clock();
  alt.latch(alt.latch(alt.input("a"), true, "l1"), false, "l2");

  // Same-phase back-to-back latches must both fit in one half-period
  // (the shoot-through race lint flags); alternation doubles fmax.
  const double f_same = sta_fmax(same, m, iss);
  const double f_alt = sta_fmax(alt, m, iss);
  EXPECT_NEAR(f_same * 4.0 * d, 1.0, 0.01);
  EXPECT_NEAR(f_alt * 2.0 * d, 1.0, 0.01);
  EXPECT_NEAR(f_alt / f_same, 2.0, 0.02);
}

TEST(StaClassic, WindowAdvancesAcrossThePhaseBoundary) {
  const stscl::SclModel m;
  const double iss = 1e-9;
  Netlist nl;
  nl.clock();
  nl.latch(nl.latch(nl.latch(nl.input("a"), true, "l1"), false, "l2"), true,
           "l3");

  const double period = 1.0 / sta_fmax(nl, m, iss) * 2.0;  // relaxed clock
  const TimingReport rep = analyze(nl, m, iss, period);
  ASSERT_TRUE(rep.feasible);
  ASSERT_EQ(rep.latches.size(), 3u);
  const double tol = 1e-9 * period;
  // l1 launches in the first H window, l2 in the first L window; l3's
  // window must be the *second* H window, a full period later.
  EXPECT_NEAR(rep.latches[0].open, 0.0, tol);
  EXPECT_NEAR(rep.latches[1].open, period / 2, tol);
  EXPECT_NEAR(rep.latches[2].open, period, tol);
  EXPECT_NEAR(rep.latches[2].close, 1.5 * period, tol);
}

TEST(StaClassic, WorstSlackOfPhasePicksThePhaseMinimum) {
  const stscl::SclModel m;
  Netlist nl;
  nl.clock();
  nl.latch(nl.latch(nl.latch(nl.input("a"), true, "l1"), false, "l2"), true,
           "l3");
  const TimingReport rep = analyze(nl, m, 1e-9, 1e-4);
  double wh = std::numeric_limits<double>::infinity();
  double wl = wh;
  for (const LatchTiming& lt : rep.latches) {
    (lt.phase ? wh : wl) = std::min(lt.phase ? wh : wl, lt.slack);
  }
  EXPECT_DOUBLE_EQ(rep.worst_slack_of_phase(true), wh);
  EXPECT_DOUBLE_EQ(rep.worst_slack_of_phase(false), wl);
}

TEST(StaClassic, InfeasiblePeriodReportsNegativeSlack) {
  const stscl::SclModel m;
  const Netlist nl = borrowing_chain(4);
  const double f = sta_fmax(nl, m, 1e-9);
  const TimingReport rep = analyze(nl, m, 1e-9, 0.25 / f);
  EXPECT_FALSE(rep.feasible);
  EXPECT_LT(rep.worst_slack, 0.0);
}

TEST(StaClassic, InputArrivalDelaysTheWholePipeline) {
  const stscl::SclModel m;
  const Netlist nl = borrowing_chain(2);
  const double period = 2.0 / sta_fmax(nl, m, 1e-9);
  StaOptions late;
  late.input_arrival_frac = 0.25;
  const TimingReport base = analyze(nl, m, 1e-9, period);
  const TimingReport shifted = analyze(nl, m, 1e-9, period, late);
  EXPECT_NEAR(shifted.latches[0].arrival - base.latches[0].arrival,
              0.25 * period, 1e-9 * period);
}

TEST(Sta, AnalyzeAtStaFmaxIsFeasibleInBothModes) {
  Netlist nl;
  const auto io = digital::build_fai_encoder(nl);
  (void)io;
  const stscl::SclModel m;
  const double iss = 1e-9;

  for (const StaMode mode : {StaMode::kClassic, StaMode::kSimCapture}) {
    StaOptions opt;
    opt.mode = mode;
    if (mode == StaMode::kSimCapture) opt.input_arrival_frac = 0.05;
    const double f = sta_fmax(nl, m, iss, opt);
    opt.lint = false;
    const TimingReport rep = analyze(nl, m, iss, 1.0 / f, opt);
    EXPECT_TRUE(rep.feasible) << "mode " << static_cast<int>(mode);
    // ... and a slightly faster clock must not be reported as feasible
    // with runaway slack (the search is tight to ~0.1%).
    const TimingReport fast = analyze(nl, m, iss, 0.9 / f, opt);
    EXPECT_FALSE(fast.feasible) << "mode " << static_cast<int>(mode);
  }
}

TEST(Sta, SimCaptureFmaxIsAtLeastClassic) {
  // The classic window discipline is conservative by design: the event
  // simulator's latches accept wave-pipelined tokens the window model
  // rejects, so the sim-capture fmax can only be equal or higher.
  Netlist nl;
  digital::build_fai_encoder(nl);
  const stscl::SclModel m;
  StaOptions sim;
  sim.mode = StaMode::kSimCapture;
  sim.input_arrival_frac = 0.05;
  const double fc = sta_fmax(nl, m, 1e-9);
  const double fs = sta_fmax(nl, m, 1e-9, sim);
  EXPECT_GE(fs, 0.999 * fc);
}

TEST(Sta, PowerBudgetsFollowEq1) {
  Netlist nl;
  digital::build_fai_encoder(nl);
  const stscl::SclModel m;
  const double iss = 1e-9;
  const double period = 2.0 / sta_fmax(nl, m, iss);
  const TimingReport rep = analyze(nl, m, iss, period);

  EXPECT_DOUBLE_EQ(rep.static_power, nl.gate_count() * iss * 1.0);
  EXPECT_GT(rep.dynamic_power, 0.0);
  // The critical path's budget is eq. (1) evaluated at the summed
  // fanout-aware path capacitance.
  EXPECT_GT(rep.critical.path_cap, 0.0);
  EXPECT_NEAR(rep.critical.power_eq1,
              m.path_power_for_cap(rep.critical.path_cap, 1.0 / period, 1.0),
              1e-18);
  // Stage budgets sum to the dynamic total.
  double sum = 0.0;
  for (const StageTiming& st : rep.stages) sum += st.power_eq1;
  EXPECT_NEAR(sum, rep.dynamic_power, 1e-15);
}

TEST(Sta, ReportRenderings) {
  Netlist nl;
  digital::build_fai_encoder(nl);
  const stscl::SclModel m;
  const TimingReport rep = analyze(nl, m, 1e-9, 2.0 / sta_fmax(nl, m, 1e-9));

  const std::string text = rep.text();
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);

  const std::string stages = rep.stage_csv();
  EXPECT_EQ(stages.rfind("rank,phase,latches,depth,slack,worst,", 0), 0u);
  // One header plus one row per stage.
  const auto lines = std::count(stages.begin(), stages.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(rep.stages.size()) + 1);

  const std::string path = rep.path_csv();
  EXPECT_EQ(path.rfind("gate,name,fanout,load_cap,delay,arrival", 0), 0u);
}

TEST(Sta, RejectsDegenerateRequests) {
  const stscl::SclModel m;
  Netlist nl;
  nl.clock();
  nl.latch(nl.input("a"), true, "l");
  EXPECT_THROW(analyze(nl, m, 1e-9, 0.0), StaError);

  Netlist comb;
  comb.buf(comb.input("a"), "b");
  EXPECT_THROW(sta_fmax(comb, m, 1e-9), StaError);  // no latches
}

}  // namespace
}  // namespace sscl::sta
