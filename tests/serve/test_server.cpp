#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve_test_decks.hpp"

namespace {

using namespace sscl;
using namespace sscl::serve_test;
using serve::Server;
using serve::ServerOptions;

struct Reply {
  std::vector<std::string> lines;
  std::string status;
  serve::Scheduler::Admit admit;
};

/// Submit and block until the END line; safe to call from any thread.
Reply submit_sync(Server& server, serve::JobRequest request) {
  auto state = std::make_shared<Reply>();
  auto mu = std::make_shared<std::mutex>();
  auto cv = std::make_shared<std::condition_variable>();
  auto done = std::make_shared<bool>(false);
  state->admit = server.submit(
      std::move(request), [state, mu, cv, done](const std::string& line) {
        std::lock_guard<std::mutex> lock(*mu);
        state->lines.push_back(line);
        if (line.rfind("END ", 0) == 0) {
          *done = true;
          cv->notify_all();
        }
      });
  std::unique_lock<std::mutex> lock(*mu);
  cv->wait(lock, [&] { return *done; });
  state->status = state->lines.back().substr(4);
  return *state;
}

/// The byte-comparable result rows: envelope lines (QUEUED/BEGIN/CACHE/
/// BUSY/END) carry ids and tier labels and are stripped.
std::vector<std::string> payload(const Reply& reply) {
  std::vector<std::string> out;
  for (const std::string& line : reply.lines) {
    if (line.rfind("QUEUED", 0) == 0 || line.rfind("BEGIN", 0) == 0 ||
        line.rfind("CACHE", 0) == 0 || line.rfind("BUSY", 0) == 0 ||
        line.rfind("END", 0) == 0) {
      continue;
    }
    out.push_back(line);
  }
  return out;
}

std::string envelope_of(const Reply& reply, const char* tag) {
  for (const std::string& line : reply.lines) {
    if (line.rfind(tag, 0) == 0) return line;
  }
  return {};
}

ServerOptions quick_options(int jobs) {
  ServerOptions options;
  options.jobs = jobs;
  return options;
}

serve::JobRequest deck_request(const char* deck) {
  serve::JobRequest request;
  request.deck_text = deck;
  return request;
}

TEST(Server, QueuedLineAlwaysPrecedesBegin) {
  Server server(quick_options(2));
  for (int i = 0; i < 8; ++i) {
    const Reply reply = submit_sync(server, deck_request(kDivider));
    ASSERT_GE(reply.lines.size(), 2u);
    EXPECT_EQ(reply.lines[0].rfind("QUEUED", 0), 0u) << reply.lines[0];
    EXPECT_EQ(reply.lines[1].rfind("BEGIN", 0), 0u) << reply.lines[1];
  }
}

TEST(Server, WarmResubmissionHitsTheCacheWithIdenticalPayload) {
  Server server(quick_options(2));
  const Reply cold = submit_sync(server, deck_request(kRcFull));
  const Reply warm = submit_sync(server, deck_request(kRcFull));
  ASSERT_EQ(cold.status, "ok");
  ASSERT_EQ(warm.status, "ok");
  EXPECT_EQ(envelope_of(cold, "CACHE"), "CACHE cold");
  EXPECT_EQ(envelope_of(warm, "CACHE"), "CACHE elab");
  EXPECT_EQ(payload(cold), payload(warm));

  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits_elab, 1);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.jobs_ok, 2);
}

TEST(Server, WhitespaceEditHitsTopologyEditMisses) {
  Server server(quick_options(2));
  submit_sync(server, deck_request(kDivider));
  const Reply ws = submit_sync(server, deck_request(kDividerWhitespace));
  EXPECT_EQ(envelope_of(ws, "CACHE"), "CACHE elab");
  const Reply topo = submit_sync(server, deck_request(kDividerTopologyEdit));
  EXPECT_EQ(envelope_of(topo, "CACHE"), "CACHE cold");
}

TEST(Server, ConcurrentClientsMatchSerialByteForByte) {
  // Pattern-tier pivot adoption is Newton-tolerance reproducible, not
  // bit-identical (cache.hpp), and whether a sibling adopts depends on
  // submission timing — so the byte-identity contract is stated and
  // tested with adoption off. docs/SERVE.md spells this out.
  ServerOptions serial_options = quick_options(1);
  serial_options.adopt_pattern = false;

  // Serial reference: every deck through a fresh single-worker server.
  const std::vector<std::string> decks = {kDivider, kDividerParamEdit,
                                          kRcFull, kDividerTopologyEdit};
  std::vector<std::vector<std::string>> reference;
  {
    Server serial(serial_options);
    for (const auto& deck : decks) {
      reference.push_back(payload(submit_sync(serial, deck_request(deck.c_str()))));
    }
  }

  // Concurrent run: 4 clients x 3 repeats of their deck, 4 workers.
  ServerOptions concurrent_options = quick_options(4);
  concurrent_options.adopt_pattern = false;
  Server server(concurrent_options);
  constexpr int kRepeats = 3;
  std::vector<std::vector<std::string>> got(decks.size() * kRepeats);
  std::vector<std::thread> clients;
  for (std::size_t d = 0; d < decks.size(); ++d) {
    clients.emplace_back([&, d] {
      for (int r = 0; r < kRepeats; ++r) {
        serve::JobRequest request;
        request.deck_text = decks[d];
        request.client = "client-" + std::to_string(d);
        got[d * kRepeats + r] = payload(submit_sync(server, request));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t d = 0; d < decks.size(); ++d) {
    for (int r = 0; r < kRepeats; ++r) {
      EXPECT_EQ(got[d * kRepeats + r], reference[d])
          << "deck " << d << " repeat " << r;
    }
  }
  // Repeats of the 4 distinct decks must have been served by the cache.
  EXPECT_GE(server.stats().cache.hits_elab,
            static_cast<long long>(decks.size() * (kRepeats - 1)));
}

TEST(Server, BackpressureRejectsWithBusyAndRetryHint) {
  ServerOptions options = quick_options(1);
  options.queue_depth = 1;
  Server server(options);

  // Saturate: one slow job running, one queued; further submissions
  // must bounce with BUSY. Submit asynchronously (no waiting).
  std::mutex mu;
  std::vector<std::string> ends;
  std::condition_variable cv;
  auto async_sink = [&](const std::string& line) {
    if (line.rfind("END ", 0) == 0) {
      std::lock_guard<std::mutex> lock(mu);
      ends.push_back(line);
      cv.notify_all();
    }
  };
  int rejected = 0;
  serve::Scheduler::Admit last_reject;
  for (int i = 0; i < 4; ++i) {
    const auto admit = server.submit(deck_request(kSlowTran), async_sink);
    if (!admit.accepted) {
      ++rejected;
      last_reject = admit;
    }
  }
  ASSERT_GE(rejected, 2);  // 4 submitted, at most 1 running + 1 queued
  EXPECT_GT(last_reject.retry_after_ms, 0);
  EXPECT_GE(server.stats().admission_rejects, 2);

  // Rejected submissions already got END busy synchronously.
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(static_cast<int>(ends.size()), rejected);
    for (const auto& line : ends) EXPECT_EQ(line, "END busy");
  }
  // stop() fires the tokens: the accepted slow jobs drain as cancelled.
  server.stop();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return static_cast<int>(ends.size()) == 4; });
}

TEST(Server, TimeoutProducesEndTimeout) {
  Server server(quick_options(1));
  serve::JobRequest request;
  request.deck_text = kSlowTran;
  request.timeout_ms = 100;
  const Reply reply = submit_sync(server, request);
  EXPECT_EQ(reply.status, "timeout");
  EXPECT_EQ(server.stats().jobs_timeout, 1);
}

TEST(Server, ServerDefaultTimeoutApplies) {
  ServerOptions options = quick_options(1);
  options.default_timeout_ms = 100;
  Server server(options);
  const Reply reply = submit_sync(server, deck_request(kSlowTran));
  EXPECT_EQ(reply.status, "timeout");
}

TEST(Server, CancelRunningJobProducesEndCancelled) {
  Server server(quick_options(1));
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> lines;
  bool done = false;
  const auto admit =
      server.submit(deck_request(kSlowTran), [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mu);
        lines.push_back(line);
        if (line.rfind("END ", 0) == 0) {
          done = true;
          cv.notify_all();
        }
      });
  ASSERT_TRUE(admit.accepted);
  // Give the transient a moment to actually start before cancelling.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(server.cancel(admit.id));
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(lines.back(), "END cancelled");
  EXPECT_EQ(server.stats().jobs_cancelled, 1);
}

TEST(Server, CancelledDeckStaysCachedAndRunsCleanAfterwards) {
  // A cancelled run must not poison the cached engine: the next job on
  // the same entry resets the runtime state and completes normally.
  Server server(quick_options(1));
  serve::JobRequest request;
  request.deck_text = kRcFull;
  request.timeout_ms = 1;  // expires almost immediately
  const Reply aborted = submit_sync(server, request);
  EXPECT_TRUE(aborted.status == "timeout" || aborted.status == "ok");

  const Reply clean = submit_sync(server, deck_request(kRcFull));
  ASSERT_EQ(clean.status, "ok");
  // And the payload matches a cold reference run bit for bit.
  Server reference(quick_options(1));
  EXPECT_EQ(payload(clean), payload(submit_sync(reference, deck_request(kRcFull))));
}

TEST(Server, MalformedDeckReportsErrorWithoutCaching) {
  Server server(quick_options(1));
  const Reply reply = submit_sync(server, deck_request(kBadModel));
  EXPECT_EQ(reply.status, "error");
  EXPECT_NE(envelope_of(reply, "ERROR"), "");
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobs_error, 1);
  EXPECT_EQ(stats.cache.entries, 0);
}

TEST(Server, MetricsJsonCarriesTheServeCounters) {
  Server server(quick_options(1));
  submit_sync(server, deck_request(kDivider));
  submit_sync(server, deck_request(kDivider));
  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"serve.requests\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.cache.hit.elab\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.cache.miss\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.jobs.ok\":2"), std::string::npos);
  EXPECT_NE(json.find("\"serve.latency.p50_ms\":"), std::string::npos);
}

TEST(Server, NodeSelectionLimitsTheReportedColumns) {
  Server server(quick_options(1));
  serve::JobRequest request;
  request.deck_text = kDivider;
  request.nodes = {"out", "nosuchnode"};
  const Reply reply = submit_sync(server, request);
  ASSERT_EQ(reply.status, "ok");
  int op_lines = 0;
  bool warned = false;
  for (const auto& line : reply.lines) {
    if (line.rfind("OP ", 0) == 0) ++op_lines;
    if (line.rfind("WARN", 0) == 0 &&
        line.find("nosuchnode") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_EQ(op_lines, 1);  // only v(out)
  EXPECT_TRUE(warned);
}

TEST(Server, StreamEveryEmitsWaveLines) {
  Server server(quick_options(1));
  serve::JobRequest request;
  request.deck_text = kRcFull;
  request.nodes = {"out"};
  request.stream_every = 10;
  const Reply reply = submit_sync(server, request);
  ASSERT_EQ(reply.status, "ok");
  int waves = 0;
  for (const auto& line : reply.lines) {
    if (line.rfind("WAVE ", 0) == 0) ++waves;
  }
  EXPECT_GT(waves, 1);
}

}  // namespace
