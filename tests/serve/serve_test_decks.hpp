#pragma once

/// Shared in-memory decks for the sscl::serve test suite. All of them
/// are self-contained (no .include) and lint-clean, so cache lookups
/// exercise only the behaviour under test.

namespace sscl::serve_test {

/// Resistor divider with a .param-valued load: the structural hash
/// stays fixed under rload edits, so this is the pattern-tier deck.
inline const char* kDivider =
    "* divider\n"
    ".param rload=1k\n"
    "v1 in 0 dc 1.0\n"
    "r1 in out 1k\n"
    "r2 out 0 'rload'\n"
    ".op\n"
    ".end\n";

/// kDivider with whitespace/comment edits only: same token stream,
/// same full hash, elaboration-tier hit.
inline const char* kDividerWhitespace =
    "* divider\n"
    "\n"
    "* a comment the lexer strips\n"
    ".param   rload=1k\n"
    "v1 in 0\n"
    "+ dc 1.0\n"
    "r1 in out 1k\n"
    "r2 out 0 'rload'\n"
    ".op\n"
    ".end\n";

/// kDivider with a different .param value: full hash differs,
/// structural hash matches (pattern tier).
inline const char* kDividerParamEdit =
    "* divider\n"
    ".param rload=2k\n"
    "v1 in 0 dc 1.0\n"
    "r1 in out 1k\n"
    "r2 out 0 'rload'\n"
    ".op\n"
    ".end\n";

/// Topology edit (extra resistor): both hashes differ, full miss.
inline const char* kDividerTopologyEdit =
    "* divider\n"
    ".param rload=1k\n"
    "v1 in 0 dc 1.0\n"
    "r1 in out 1k\n"
    "r2 out 0 'rload'\n"
    "r3 out 0 10k\n"
    ".op\n"
    ".end\n";

/// RC low-pass with op + dc sweep + transient + measures: the payload
/// coverage deck for byte-identity checks.
inline const char* kRcFull =
    "* rc bench\n"
    "v1 in 0 pulse(0 1 0 1n 1n 50n 100n)\n"
    "r1 in out 10k\n"
    "c1 out 0 1p\n"
    ".op\n"
    ".dc v1 0 1 0.25\n"
    ".tran 1n 100n\n"
    ".measure tran vmax max v(out)\n"
    ".measure tran vmin min v(out)\n"
    ".measure tran tplh trig v(in) val=0.5 rise=1 targ v(out) val=0.5 rise=1\n"
    ".end\n";

/// A transient that takes effectively forever (100k pulse-period
/// breakpoints): the cancellation/timeout victim. Every test that
/// submits it must cancel it, time it out, or stop the server.
inline const char* kSlowTran =
    "* slow\n"
    "v1 in 0 pulse(0 1 0 1u 1u 5u 10u)\n"
    "r1 in out 1k\n"
    "c1 out 0 1n\n"
    ".tran 0.1u 1\n"
    ".end\n";

/// Lexes fine but fails elaboration (unknown model): the cache must
/// throw and stay empty.
inline const char* kBadModel =
    "* bad\n"
    "m1 out in 0 0 no_such_model W=1u L=1u\n"
    "v1 in 0 dc 1.0\n"
    ".op\n"
    ".end\n";

}  // namespace sscl::serve_test
