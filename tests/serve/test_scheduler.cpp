#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace sscl;
using serve::Scheduler;

Scheduler::Options single_worker(int queue_depth) {
  Scheduler::Options options;
  options.jobs = 1;
  options.queue_depth = queue_depth;
  return options;
}

/// Blocks every job on one gate so tests control exactly when the
/// single worker makes progress, and records completion order.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::string> order;

  void wait_open() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
  void record(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(label);
  }
  void wait_count(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return order.size() >= n; });
  }
};

TEST(Scheduler, RoundRobinsAcrossClients) {
  Gate gate;
  Scheduler scheduler(single_worker(16));
  auto job = [&gate](const std::string& label) {
    return [&gate, label](long long, run::CancelToken&) {
      gate.wait_open();
      gate.record(label);
      gate.cv.notify_all();
    };
  };
  // All five land while the worker is blocked on the first one it
  // picked, so the fairness cursor decides the rest: a after a, b and c
  // interleave ahead of the flooder's backlog.
  scheduler.submit("a", job("a1"), nullptr);
  scheduler.submit("a", job("a2"), nullptr);
  scheduler.submit("a", job("a3"), nullptr);
  scheduler.submit("b", job("b1"), nullptr);
  scheduler.submit("c", job("c1"), nullptr);
  gate.release();
  gate.wait_count(5);
  scheduler.stop();

  const auto& order = gate.order;
  ASSERT_EQ(order.size(), 5u);
  // Client a floods first, so a1 starts first; after that every other
  // client gets a turn before a's backlog continues.
  EXPECT_EQ(order[0], "a1");
  auto pos = [&order](const std::string& label) {
    return std::find(order.begin(), order.end(), label) - order.begin();
  };
  EXPECT_LT(pos("b1"), pos("a3"));
  EXPECT_LT(pos("c1"), pos("a3"));
}

TEST(Scheduler, RejectsWithRetryHintWhenTheQueueIsFull) {
  Gate gate;
  Scheduler scheduler(single_worker(1));
  auto blocked = [&gate](long long, run::CancelToken&) { gate.wait_open(); };
  // First job is picked up by the worker (blocked on the gate), second
  // fills the queue slot; the third must bounce.
  ASSERT_TRUE(scheduler.submit("a", blocked, nullptr).accepted);
  // Wait until the worker pulled the first job off the queue so the
  // admission math below is deterministic.
  while (scheduler.queue_depth() != 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(scheduler.submit("a", blocked, nullptr).accepted);
  const Scheduler::Admit rejected = scheduler.submit("a", blocked, nullptr);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GT(rejected.retry_after_ms, 0);
  gate.release();
  scheduler.stop();
}

TEST(Scheduler, OnAdmitRunsBeforeTheWork) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> events;
  bool done = false;
  Scheduler scheduler(single_worker(4));
  scheduler.submit(
      "a",
      [&](long long, run::CancelToken&) {
        std::lock_guard<std::mutex> lock(mu);
        events.push_back("work");
        done = true;
        cv.notify_all();
      },
      [&](long long id) {
        std::lock_guard<std::mutex> lock(mu);
        events.push_back("admit:" + std::to_string(id));
      });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "admit:1");
  EXPECT_EQ(events[1], "work");
}

TEST(Scheduler, CancelFiresTheTokenOfAQueuedJob) {
  Gate gate;
  Scheduler scheduler(single_worker(4));
  scheduler.submit(
      "a", [&gate](long long, run::CancelToken&) { gate.wait_open(); },
      nullptr);
  bool queued_saw_cancel = false;
  long long queued_id = 0;
  scheduler.submit(
      "a",
      [&](long long, run::CancelToken& token) {
        queued_saw_cancel = token.stop_requested();
        gate.record("queued-ran");
        gate.cv.notify_all();
      },
      [&](long long id) { queued_id = id; });
  EXPECT_TRUE(scheduler.cancel(queued_id));
  gate.release();
  gate.wait_count(1);
  scheduler.stop();
  // The queued job still ran (its submitter needs an END line), but
  // with a fired token.
  EXPECT_TRUE(queued_saw_cancel);
}

TEST(Scheduler, CancelReturnsFalseForUnknownOrFinishedIds) {
  Scheduler scheduler(single_worker(4));
  EXPECT_FALSE(scheduler.cancel(999));
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  long long id = 0;
  scheduler.submit(
      "a",
      [&](long long, run::CancelToken&) {
        std::lock_guard<std::mutex> lock(mu);
        done = true;
        cv.notify_all();
      },
      [&](long long assigned) { id = assigned; });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  scheduler.stop();
  EXPECT_FALSE(scheduler.cancel(id));
}

TEST(Scheduler, StopCancelsQueuedJobsButStillRunsThem) {
  Gate gate;
  Scheduler scheduler(single_worker(8));
  scheduler.submit(
      "a", [&gate](long long, run::CancelToken&) { gate.wait_open(); },
      nullptr);
  int ran_with_fired_token = 0;
  for (int i = 0; i < 3; ++i) {
    scheduler.submit(
        "a",
        [&](long long, run::CancelToken& token) {
          if (token.stop_requested()) ++ran_with_fired_token;
        },
        nullptr);
  }
  // stop() fires every token; release the gate from another thread so
  // the running job can drain.
  std::thread opener([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();
  });
  scheduler.stop();
  opener.join();
  // Every queued job got its (cancelled) execution: the submitters'
  // END-line contract survives shutdown.
  EXPECT_EQ(ran_with_fired_token, 3);
  EXPECT_FALSE(scheduler.submit("a", [](long long, run::CancelToken&) {},
                                nullptr)
                   .accepted);
}

}  // namespace
