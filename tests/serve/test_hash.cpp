#include "netlist/hash.hpp"

#include <gtest/gtest.h>

#include "netlist/lexer.hpp"
#include "serve_test_decks.hpp"

namespace {

using namespace sscl;
using namespace sscl::serve_test;

netlist::TokenHashes hash_text(const std::string& text,
                               const netlist::LexOptions& options = {}) {
  return netlist::hash_tokens(netlist::lex_deck(text, "<deck>", options));
}

TEST(TokenHash, WhitespaceAndCommentsDoNotChangeEitherHash) {
  const auto a = hash_text(kDivider);
  const auto b = hash_text(kDividerWhitespace);
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.structural, b.structural);
}

TEST(TokenHash, CaseDoesNotChangeEitherHash) {
  const auto a = hash_text("* t\nR1 IN 0 1K\nV1 IN 0 DC 1\n.OP\n.END\n");
  const auto b = hash_text("* t\nr1 in 0 1k\nv1 in 0 dc 1\n.op\n.end\n");
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.structural, b.structural);
}

TEST(TokenHash, ParamValueEditChangesOnlyTheFullHash) {
  const auto a = hash_text(kDivider);
  const auto b = hash_text(kDividerParamEdit);
  EXPECT_NE(a.full, b.full);
  EXPECT_EQ(a.structural, b.structural);
}

TEST(TokenHash, TopologyEditChangesBothHashes) {
  const auto a = hash_text(kDivider);
  const auto b = hash_text(kDividerTopologyEdit);
  EXPECT_NE(a.full, b.full);
  EXPECT_NE(a.structural, b.structural);
}

TEST(TokenHash, ElementValueEditChangesBothHashes) {
  // Only .param values are masked in the structural stream; an element
  // value edit renumbers nothing but is not a pure-.param edit, so it
  // must fall through to the miss tier.
  const auto a = hash_text("* t\nr1 in 0 1k\nv1 in 0 dc 1\n.op\n.end\n");
  const auto b = hash_text("* t\nr1 in 0 2k\nv1 in 0 dc 1\n.op\n.end\n");
  EXPECT_NE(a.full, b.full);
  EXPECT_NE(a.structural, b.structural);
}

TEST(TokenHash, TitleIsPartOfTheFullHash) {
  const auto a = hash_text("* one\nr1 in 0 1k\nv1 in 0 dc 1\n.op\n.end\n");
  const auto b = hash_text("* two\nr1 in 0 1k\nv1 in 0 dc 1\n.op\n.end\n");
  EXPECT_NE(a.full, b.full);
}

TEST(TokenHash, IncludeIndirectionDoesNotChangeTheHash) {
  // The hash covers the post-.include token stream, so splicing the
  // same cards from a file is invisible.
  const std::string inline_deck =
      "* t\n.param rl=1k\nr1 in 0 'rl'\nv1 in 0 dc 1\n.op\n.end\n";
  const std::string including_deck =
      "* t\n.include lib.inc\nr1 in 0 'rl'\nv1 in 0 dc 1\n.op\n.end\n";
  netlist::LexOptions options;
  options.include_loader =
      [](const std::string& path) -> std::optional<std::string> {
    if (path == "lib.inc") return std::string(".param rl=1k\n");
    return std::nullopt;
  };
  const auto a = hash_text(inline_deck);
  const auto b = hash_text(including_deck, options);
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.structural, b.structural);
}

TEST(TokenHash, CanonicalTokensAreLowercasedAndSpaceSeparated) {
  const auto lexed = netlist::lex_deck("* t\nR1 IN 0 1K\n.end\n");
  EXPECT_EQ(netlist::canonical_tokens(lexed), "r1 in 0 1k \n.end \n");
}

TEST(TokenHash, QuotedExpressionsKeepTheirMarkers) {
  // 'expr' quoting is semantic (deferred evaluation), so the canonical
  // stream must distinguish r1 in 0 {rl} from r1 in 0 rl.
  const auto quoted = netlist::lex_deck("* t\nr1 in 0 'rl'\n.end\n");
  EXPECT_EQ(netlist::canonical_tokens(quoted), "r1 in 0 {rl} \n.end \n");
  const auto bare = hash_text("* t\nr1 in 0 rl\n.end\n");
  EXPECT_NE(hash_text("* t\nr1 in 0 'rl'\n.end\n").full, bare.full);
}

}  // namespace
