#include "serve/protocol.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sscl;
using serve::Command;

TEST(Protocol, ParsesBareCommands) {
  EXPECT_EQ(serve::parse_command("METRICS").kind, Command::Kind::kMetrics);
  EXPECT_EQ(serve::parse_command("STATS").kind, Command::Kind::kStats);
  EXPECT_EQ(serve::parse_command("PING").kind, Command::Kind::kPing);
  EXPECT_EQ(serve::parse_command("SHUTDOWN").kind, Command::Kind::kShutdown);
}

TEST(Protocol, ParsesCancel) {
  const Command c = serve::parse_command("CANCEL 42");
  EXPECT_EQ(c.kind, Command::Kind::kCancel);
  EXPECT_EQ(c.job_id, 42);
}

TEST(Protocol, ParsesSubmitWithAllOptions) {
  const Command c = serve::parse_command(
      "SUBMIT 123 client=alice nodes=in,out stream=4 timeout=250");
  ASSERT_EQ(c.kind, Command::Kind::kSubmit);
  EXPECT_EQ(c.nbytes, 123u);
  EXPECT_EQ(c.request.client, "alice");
  ASSERT_EQ(c.request.nodes.size(), 2u);
  EXPECT_EQ(c.request.nodes[0], "in");
  EXPECT_EQ(c.request.nodes[1], "out");
  EXPECT_EQ(c.request.stream_every, 4);
  EXPECT_EQ(c.request.timeout_ms, 250);
}

TEST(Protocol, SubmitRoundTripsThroughFormatSubmit) {
  serve::JobRequest request;
  request.deck_text = "* t\n.end\n";
  request.client = "bob";
  request.nodes = {"out"};
  request.stream_every = 2;
  request.timeout_ms = 100;
  const Command c = serve::parse_command(serve::format_submit(request));
  ASSERT_EQ(c.kind, Command::Kind::kSubmit);
  EXPECT_EQ(c.nbytes, request.deck_text.size());
  EXPECT_EQ(c.request.client, request.client);
  EXPECT_EQ(c.request.nodes, request.nodes);
  EXPECT_EQ(c.request.stream_every, request.stream_every);
  EXPECT_EQ(c.request.timeout_ms, request.timeout_ms);
}

TEST(Protocol, RejectsMalformedCommands) {
  EXPECT_EQ(serve::parse_command("").kind, Command::Kind::kBad);
  EXPECT_EQ(serve::parse_command("NOPE").kind, Command::Kind::kBad);
  EXPECT_EQ(serve::parse_command("SUBMIT").kind, Command::Kind::kBad);
  EXPECT_EQ(serve::parse_command("SUBMIT banana").kind, Command::Kind::kBad);
  EXPECT_EQ(serve::parse_command("SUBMIT 10 naked").kind, Command::Kind::kBad);
  EXPECT_EQ(serve::parse_command("CANCEL").kind, Command::Kind::kBad);
  const Command bad = serve::parse_command("SUBMIT banana");
  EXPECT_FALSE(bad.error.empty());
}

TEST(Protocol, StatusNamesMatchTheWireWords) {
  EXPECT_STREQ(serve::job_status_name(serve::JobStatus::kOk), "ok");
  EXPECT_STREQ(serve::job_status_name(serve::JobStatus::kError), "error");
  EXPECT_STREQ(serve::job_status_name(serve::JobStatus::kCancelled),
               "cancelled");
  EXPECT_STREQ(serve::job_status_name(serve::JobStatus::kTimeout), "timeout");
}

TEST(Protocol, FmtG17RoundTripsDoubles) {
  for (double v : {0.0, 1.0, 0.39999948642046418, 6.3341822670592159e-07,
                   -1.5e300}) {
    EXPECT_EQ(std::stod(serve::fmt_g17(v)), v);
  }
}

}  // namespace
