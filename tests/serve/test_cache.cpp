#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include "netlist/diagnostic.hpp"
#include "serve_test_decks.hpp"

namespace {

using namespace sscl;
using namespace sscl::serve_test;
using serve::CacheTier;
using serve::ElabCache;

ElabCache::Options small_cache(int capacity) {
  ElabCache::Options options;
  options.capacity = capacity;
  // Tiny test circuits would pick the dense path, which has no pivot
  // sequence to adopt; force sparse so the pattern tier is observable.
  options.solver.force_sparse = true;
  return options;
}

TEST(ElabCache, ColdLookupIsAMiss) {
  ElabCache cache(small_cache(4));
  const auto lookup = cache.acquire(kDivider);
  EXPECT_EQ(lookup.tier, CacheTier::kMiss);
  ASSERT_TRUE(lookup.entry);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ElabCache, ResubmissionHitsTheElaborationTier) {
  ElabCache cache(small_cache(4));
  const auto cold = cache.acquire(kDivider);
  const auto warm = cache.acquire(kDivider);
  EXPECT_EQ(warm.tier, CacheTier::kElabHit);
  EXPECT_EQ(warm.entry.get(), cold.entry.get());
  EXPECT_EQ(cache.stats().hits_elab, 1);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ElabCache, WhitespaceOnlyEditStillHitsTheElaborationTier) {
  ElabCache cache(small_cache(4));
  cache.acquire(kDivider);
  const auto warm = cache.acquire(kDividerWhitespace);
  EXPECT_EQ(warm.tier, CacheTier::kElabHit);
  EXPECT_EQ(cache.stats().hits_elab, 1);
}

TEST(ElabCache, TopologyEditMisses) {
  ElabCache cache(small_cache(4));
  cache.acquire(kDivider);
  const auto edited = cache.acquire(kDividerTopologyEdit);
  EXPECT_EQ(edited.tier, CacheTier::kMiss);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(ElabCache, ParamEditBeforeTheDonorSolvedIsAPlainMiss) {
  // An unsolved donor has no pivot sequence to adopt, so a structural
  // match cannot be promoted to the pattern tier yet.
  ElabCache cache(small_cache(4));
  cache.acquire(kDivider);
  const auto early = cache.acquire(kDividerParamEdit);
  EXPECT_EQ(early.tier, CacheTier::kMiss);
  EXPECT_EQ(cache.stats().hits_pattern, 0);
}

TEST(ElabCache, ParamValueEditHitsThePatternTierOnceTheDonorSolved) {
  ElabCache cache(small_cache(4));
  const auto donor = cache.acquire(kDivider);
  donor.entry->engine().solve_op();
  ASSERT_TRUE(donor.entry->engine()
                  .linear_system()
                  .has_symbolic_factorization());
  const auto sibling = cache.acquire(kDividerParamEdit);
  EXPECT_EQ(sibling.tier, CacheTier::kPatternHit);
  EXPECT_EQ(cache.stats().hits_pattern, 1);

  // The adopted factorisation must still produce the right answer
  // (rload=2k: out = 2k / 3k of the 1 V source).
  const auto solution = sibling.entry->engine().solve_op();
  const auto out = sibling.entry->deck().circuit->find_node("out");
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(solution.v(*out), 2000.0 / 3000.0, 1e-6);
}

TEST(ElabCache, AdoptOptOutDowngradesThePatternTierToAMiss) {
  auto options = small_cache(4);
  options.adopt = false;
  ElabCache cache(options);
  const auto donor = cache.acquire(kDivider);
  donor.entry->engine().solve_op();
  const auto sibling = cache.acquire(kDividerParamEdit);
  EXPECT_EQ(sibling.tier, CacheTier::kMiss);
  EXPECT_EQ(cache.stats().hits_pattern, 0);
}

TEST(ElabCache, EvictsLeastRecentlyUsedAtCapacityTwo) {
  ElabCache cache(small_cache(2));
  const std::string decks[3] = {kDivider, kDividerTopologyEdit, kRcFull};
  cache.acquire(decks[0]);
  cache.acquire(decks[1]);
  cache.acquire(decks[0]);  // refresh 0: 1 is now the LRU victim
  cache.acquire(decks[2]);  // evicts 1
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.acquire(decks[0]).tier, CacheTier::kElabHit);
  EXPECT_EQ(cache.acquire(decks[1]).tier, CacheTier::kMiss);  // was evicted
}

TEST(ElabCache, EvictedEntryStaysUsableThroughItsSharedPtr) {
  ElabCache cache(small_cache(1));
  const auto held = cache.acquire(kDivider);
  cache.acquire(kDividerTopologyEdit);  // evicts kDivider
  EXPECT_EQ(cache.stats().evictions, 1);
  const auto solution = held.entry->engine().solve_op();
  const auto out = held.entry->deck().circuit->find_node("out");
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(solution.v(*out), 0.5, 1e-9);
}

TEST(ElabCache, MalformedDeckThrowsAndInsertsNothing) {
  ElabCache cache(small_cache(4));
  EXPECT_THROW(cache.acquire(kBadModel), netlist::NetlistError);
  EXPECT_EQ(cache.stats().entries, 0);
  // The failed probe must not poison later lookups.
  EXPECT_EQ(cache.acquire(kDivider).tier, CacheTier::kMiss);
}

TEST(ElabCache, RejectsNonPositiveCapacity) {
  ElabCache::Options options;
  options.capacity = 0;
  EXPECT_THROW(ElabCache cache(options), std::invalid_argument);
}

TEST(ElabCache, TierNamesMatchTheWireWords) {
  EXPECT_STREQ(serve::cache_tier_name(CacheTier::kMiss), "cold");
  EXPECT_STREQ(serve::cache_tier_name(CacheTier::kPatternHit), "pattern");
  EXPECT_STREQ(serve::cache_tier_name(CacheTier::kElabHit), "elab");
}

}  // namespace
