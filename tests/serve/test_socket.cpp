#include "serve/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve_test_decks.hpp"

namespace {

using namespace sscl;
using namespace sscl::serve_test;

/// Daemon-on-an-ephemeral-port fixture: real TCP loopback, real wire
/// protocol, torn down per test.
class SocketServe : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions options;
    options.jobs = 2;
    core_ = std::make_unique<serve::Server>(options);
    transport_ = std::make_unique<serve::SocketServer>(*core_, 0);
    ASSERT_GT(transport_->port(), 0);
    transport_->start();
  }

  void TearDown() override {
    transport_->stop();
    transport_.reset();
    core_.reset();
  }

  std::unique_ptr<serve::Server> core_;
  std::unique_ptr<serve::SocketServer> transport_;
};

std::vector<std::string> payload(const serve::Client::Reply& reply) {
  std::vector<std::string> out;
  for (const std::string& line : reply.lines) {
    if (line.rfind("QUEUED", 0) == 0 || line.rfind("BEGIN", 0) == 0 ||
        line.rfind("CACHE", 0) == 0 || line.rfind("BUSY", 0) == 0 ||
        line.rfind("END", 0) == 0) {
      continue;
    }
    out.push_back(line);
  }
  return out;
}

std::string envelope_of(const serve::Client::Reply& reply, const char* tag) {
  for (const std::string& line : reply.lines) {
    if (line.rfind(tag, 0) == 0) return line;
  }
  return {};
}

TEST_F(SocketServe, PingPongs) {
  serve::Client client(transport_->port());
  const auto reply = client.command("PING");
  ASSERT_EQ(reply.lines.size(), 2u);
  EXPECT_EQ(reply.lines[0], "PONG");
  EXPECT_EQ(reply.status, "ok");
}

TEST_F(SocketServe, SubmitTwiceHitsTheCacheOverTheWire) {
  serve::Client client(transport_->port());
  serve::JobRequest request;
  request.deck_text = kRcFull;
  const auto cold = client.submit(request);
  const auto warm = client.submit(request);
  ASSERT_EQ(cold.status, "ok");
  ASSERT_EQ(warm.status, "ok");
  EXPECT_EQ(envelope_of(cold, "CACHE"), "CACHE cold");
  EXPECT_EQ(envelope_of(warm, "CACHE"), "CACHE elab");
  EXPECT_EQ(payload(cold), payload(warm));

  const auto metrics = client.command("METRICS");
  ASSERT_EQ(metrics.status, "ok");
  const std::string& json = metrics.lines[0];
  EXPECT_NE(json.find("\"serve.cache.hit.elab\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"serve.cache.miss\":1"), std::string::npos);
}

TEST_F(SocketServe, StatsLinesAreTagged) {
  serve::Client client(transport_->port());
  serve::JobRequest request;
  request.deck_text = kDivider;
  client.submit(request);
  const auto stats = client.command("STATS");
  ASSERT_EQ(stats.status, "ok");
  bool saw_requests = false;
  for (const auto& line : stats.lines) {
    if (line == "STAT requests 1") saw_requests = true;
  }
  EXPECT_TRUE(saw_requests);
}

TEST_F(SocketServe, TwoConnectionsShareTheCache) {
  serve::Client first(transport_->port());
  serve::JobRequest request;
  request.deck_text = kDivider;
  ASSERT_EQ(first.submit(request).status, "ok");

  serve::Client second(transport_->port());
  const auto warm = second.submit(request);
  EXPECT_EQ(envelope_of(warm, "CACHE"), "CACHE elab");
}

TEST_F(SocketServe, ConcurrentConnectionsAllComplete) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> statuses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &statuses] {
      serve::Client client(transport_->port());
      serve::JobRequest request;
      request.deck_text = kRcFull;
      request.client = "c" + std::to_string(i);
      statuses[static_cast<std::size_t>(i)] = client.submit(request).status;
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& status : statuses) EXPECT_EQ(status, "ok");
  EXPECT_EQ(core_->stats().jobs_ok, kClients);
}

TEST_F(SocketServe, CancelFromASecondConnection) {
  serve::Client submitter(transport_->port());
  serve::JobRequest request;
  request.deck_text = kSlowTran;

  std::thread canceller([this] {
    // The submitter's QUEUED line carries id 1 (first job).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    serve::Client side(transport_->port());
    const auto reply = side.command("CANCEL 1");
    EXPECT_EQ(reply.status, "ok");
  });
  const auto reply = submitter.submit(request);
  canceller.join();
  EXPECT_EQ(reply.status, "cancelled");
}

TEST_F(SocketServe, CancelUnknownIdIsAnError) {
  serve::Client client(transport_->port());
  EXPECT_EQ(client.command("CANCEL 999").status, "error");
}

TEST_F(SocketServe, MalformedCommandGetsErrorLine) {
  serve::Client client(transport_->port());
  const auto reply = client.command("FROBNICATE");
  EXPECT_EQ(reply.status, "error");
  EXPECT_NE(envelope_of(reply, "ERROR"), "");
}

TEST_F(SocketServe, ShutdownStopsTheAcceptLoop) {
  {
    serve::Client client(transport_->port());
    EXPECT_EQ(client.command("SHUTDOWN").status, "ok");
  }
  // After SHUTDOWN the listener is gone: a fresh connection must fail.
  // (Give the accept loop a moment to unwind.)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_THROW(serve::Client reconnect(transport_->port()),
               std::runtime_error);
}

}  // namespace
