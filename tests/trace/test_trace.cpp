#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sscl::trace {
namespace {

/// Every test owns the global trace state: start clean, leave clean.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    reset();
  }
  void TearDown() override {
    disable();
    set_ring_capacity(32768);
    reset();
  }

  /// The calling thread's snapshot lane (registered lazily by the first
  /// recorded span).
  static const ThreadSnapshot* my_lane(const Snapshot& snap) {
    // Single-threaded tests record on exactly one lane; return the one
    // holding events (or the first, for empty traces).
    for (const ThreadSnapshot& t : snap.threads) {
      if (!t.events.empty() || t.dropped > 0) return &t;
    }
    return snap.threads.empty() ? nullptr : &snap.threads.front();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    Span span("noop", "test");
    Counter c("test.counter");
    c.add(5);
    set_counter("test.abs", 7);
    set_gauge("test.gauge", 1.5);
  }
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.total_events(), 0u);
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0) << name;
  }
}

TEST_F(TraceTest, SpanRecordsNameCategoryAndDuration) {
  enable();
  {
    Span span("unit", "test");
  }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.total_events(), 1u);
  const ThreadSnapshot* lane = my_lane(snap);
  ASSERT_NE(lane, nullptr);
  const Event& e = lane->events.front();
  EXPECT_STREQ(e.name, "unit");
  EXPECT_STREQ(e.category, "test");
  EXPECT_EQ(e.arg_name, nullptr);
  EXPECT_GE(now_ns(), e.start_ns + e.dur_ns);
}

TEST_F(TraceTest, SpanArgumentIsKept) {
  enable();
  {
    Span span("point", "test", "index", 42);
  }
  const Snapshot snap = snapshot();
  const ThreadSnapshot* lane = my_lane(snap);
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->events.size(), 1u);
  EXPECT_STREQ(lane->events[0].arg_name, "index");
  EXPECT_EQ(lane->events[0].arg, 42);
}

TEST_F(TraceTest, NestedSpansCloseInnerFirst) {
  enable();
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
    }
  }
  const Snapshot snap = snapshot();
  const ThreadSnapshot* lane = my_lane(snap);
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->events.size(), 2u);
  // Completion order: inner ends (and is recorded) before outer.
  EXPECT_STREQ(lane->events[0].name, "inner");
  EXPECT_STREQ(lane->events[1].name, "outer");
  const Event& inner = lane->events[0];
  const Event& outer = lane->events[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST_F(TraceTest, RingOverflowKeepsNewestAndCountsDrops) {
  set_ring_capacity(8);
  enable();
  for (int i = 0; i < 20; ++i) {
    Span span("ring", "test", "i", i);
  }
  const Snapshot snap = snapshot();
  const ThreadSnapshot* lane = my_lane(snap);
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->events.size(), 8u);
  EXPECT_EQ(lane->dropped, 12u);
  EXPECT_EQ(snap.total_dropped(), 12u);
  // Oldest-first unrolling: the survivors are the last 8 spans, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(lane->events[static_cast<std::size_t>(i)].arg, 12 + i);
  }
}

TEST_F(TraceTest, ResetClearsEventsAndMetrics) {
  enable();
  {
    Span span("gone", "test");
  }
  set_counter("test.reset_counter", 3);
  set_gauge("test.reset_gauge", 2.5);
  reset();
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.total_events(), 0u);
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_EQ(value, 0.0) << name;
  }
}

TEST_F(TraceTest, CountersAccumulateAndGaugesKeepLastValue) {
  enable();
  Counter c("test.acc");
  c.add();
  c.add(9);
  Gauge g("test.level");
  g.set(0.25);
  g.set(0.75);
  set_counter("test.absolute", 123);

  const Snapshot snap = snapshot();
  long long acc = -1, absolute = -1;
  double level = -1.0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.acc") acc = value;
    if (name == "test.absolute") absolute = value;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.level") level = value;
  }
  EXPECT_EQ(acc, 10);
  EXPECT_EQ(absolute, 123);
  EXPECT_DOUBLE_EQ(level, 0.75);
}

TEST_F(TraceTest, ThreadNamePersistsWhileDisabled) {
  set_thread_name("lane-under-test");
  enable();
  {
    Span span("named", "test");
  }
  const Snapshot snap = snapshot();
  bool found = false;
  for (const ThreadSnapshot& t : snap.threads) {
    if (t.name == "lane-under-test") found = !t.events.empty();
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, DisableStopsRecordingButKeepsData) {
  enable();
  {
    Span span("kept", "test");
  }
  set_counter("test.kept", 5);
  disable();
  {
    Span span("ignored", "test");
  }
  set_counter("test.kept", 99);

  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.total_events(), 1u);
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.kept") {
      EXPECT_EQ(value, 5);
    }
  }
}

}  // namespace
}  // namespace sscl::trace
