#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>

#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"
#include "trace/trace.hpp"

namespace sscl::trace {
namespace {

/// Minimal strict JSON parser, enough to golden-check the exporters:
/// validates the full grammar and records every `"key":` seen. Numbers
/// and strings are validated but not stored.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True when the whole input is one valid JSON value.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  const std::set<std::string>& keys() const { return keys_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string(nullptr);
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (peek() != '"' || !string(&key)) return false;
      keys_.insert(key);
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char c = s_[pos_];
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (++pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (!std::strchr("\"\\/bfnrt", c)) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      } else if (out) {
        *out += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::set<std::string> keys_;
};

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    reset();
  }
  void TearDown() override {
    disable();
    reset();
  }
};

TEST_F(TraceExportTest, ChromeTraceIsValidJsonWithRequiredKeys) {
  enable();
  set_thread_name("main");
  {
    Span a("alpha", "cat-a");
    Span b("beta", "cat-b", "index", 3);
  }
  std::ostringstream os;
  write_chrome_trace(os, snapshot());

  JsonChecker check(os.str());
  ASSERT_TRUE(check.valid()) << os.str();
  // The trace-event envelope and the per-event keys Perfetto requires.
  for (const char* key :
       {"displayTimeUnit", "traceEvents", "ph", "name", "cat", "pid", "tid",
        "ts", "dur", "args"}) {
    EXPECT_TRUE(check.keys().count(key)) << "missing key " << key;
  }
}

TEST_F(TraceExportTest, ChromeTraceEscapesMetacharacters) {
  enable();
  set_thread_name("quote\"back\\slash\tlane");
  {
    Span span("escaped", "test");
  }
  std::ostringstream os;
  write_chrome_trace(os, snapshot());
  JsonChecker check(os.str());
  EXPECT_TRUE(check.valid()) << os.str();
}

TEST_F(TraceExportTest, EmptyTraceStillValid) {
  std::ostringstream os;
  write_chrome_trace(os, snapshot());
  JsonChecker check(os.str());
  EXPECT_TRUE(check.valid()) << os.str();
}

TEST_F(TraceExportTest, MetricsJsonHasCountersGaugesAndHealth) {
  enable();
  set_counter("unit.count", 11);
  set_gauge("unit.ratio", 0.5);
  std::ostringstream os;
  write_metrics_json(os, snapshot());

  JsonChecker check(os.str());
  ASSERT_TRUE(check.valid()) << os.str();
  for (const char* key : {"counters", "gauges", "trace", "unit.count",
                          "unit.ratio", "threads", "events", "dropped"}) {
    EXPECT_TRUE(check.keys().count(key)) << "missing key " << key;
  }
}

TEST_F(TraceExportTest, MetricsCsvRowsAreLabelled) {
  enable();
  set_counter("unit.count", 11);
  set_gauge("unit.ratio", 0.5);
  std::ostringstream os;
  write_metrics_csv(os, snapshot());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("metric,kind,value\n"), std::string::npos);
  EXPECT_NE(csv.find("unit.count,counter,11\n"), std::string::npos);
  EXPECT_NE(csv.find("unit.ratio,gauge,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("trace.events,counter,"), std::string::npos);
}

// The acceptance check of the observability layer: a real transient run
// traced end-to-end yields valid Chrome trace JSON with all four core
// span categories.
TEST_F(TraceExportTest, TransientRunCoversCoreSpanCategories) {
  enable();
  set_thread_name("main");

  spice::Circuit c;
  const spice::NodeId in = c.node("in");
  const spice::NodeId out = c.node("out");
  c.add<spice::VoltageSource>(
      "V1", in, spice::kGround,
      spice::SourceSpec::pulse(0, 1, 0.1e-6, 1e-9, 1e-9, 1));
  c.add<spice::Resistor>("R1", in, out, 1e3);
  c.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9);

  spice::Engine engine(c);
  spice::TransientOptions opts;
  opts.tstop = 5e-6;
  (void)run_transient(engine, opts);

  const Snapshot snap = snapshot();
  std::set<std::string> cats;
  for (const ThreadSnapshot& t : snap.threads) {
    for (const Event& e : t.events) cats.insert(e.category);
  }
  for (const char* want : {"newton", "device-eval", "factor", "timestep"}) {
    EXPECT_TRUE(cats.count(want)) << "missing span category " << want;
  }

  // EngineStats published as counters at analysis exit.
  long long steps = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "spice.transient_steps") steps = value;
  }
  EXPECT_GT(steps, 0);

  std::ostringstream os;
  write_chrome_trace(os, snap);
  JsonChecker check(os.str());
  EXPECT_TRUE(check.valid());
}

}  // namespace
}  // namespace sscl::trace
