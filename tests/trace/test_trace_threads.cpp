#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "run/parallel_for.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "trace/trace.hpp"

// Concurrency behaviour of the trace layer, driven through the real
// sscl::run primitives. This suite is part of the ThreadSanitizer CI
// target: spans, counters and snapshots from many threads must be
// data-race free.

namespace sscl::trace {
namespace {

class TraceThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    reset();
  }
  void TearDown() override {
    disable();
    set_ring_capacity(32768);
    reset();
  }
};

TEST_F(TraceThreadsTest, ThreadPoolTasksRecordOnNamedWorkerLanes) {
  enable();
  {
    run::ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 24; ++i) {
      futures.push_back(pool.submit([] {
        Span span("unit-task", "test");
      }));
    }
    for (auto& f : futures) f.get();
  }
  // The pool is destroyed: worker lanes must survive in the snapshot.
  const Snapshot snap = snapshot();
  std::set<std::string> lanes;
  std::size_t task_spans = 0;
  for (const ThreadSnapshot& t : snap.threads) {
    for (const Event& e : t.events) {
      if (std::string(e.name) == "unit-task") {
        ++task_spans;
        lanes.insert(t.name);
      }
    }
  }
  EXPECT_EQ(task_spans, 24u);
  for (const std::string& lane : lanes) {
    EXPECT_EQ(lane.rfind("worker-", 0), 0u) << "unexpected lane " << lane;
  }
  // ThreadPool::worker_loop also wraps every task in a "task" span.
  std::size_t pool_spans = 0;
  for (const ThreadSnapshot& t : snap.threads) {
    for (const Event& e : t.events) {
      if (std::string(e.category) == "task") ++pool_spans;
    }
  }
  EXPECT_GE(pool_spans, 24u);
}

TEST_F(TraceThreadsTest, SpanNestingStaysPerThread) {
  enable();
  // Each worker nests inner inside outer; lanes must never interleave
  // events across threads (inner recorded on the same lane as its outer).
  run::parallel_for(16, 4, [](std::size_t i) {
    Span outer("outer", "test", "i", static_cast<long long>(i));
    Span inner("inner", "test", "i", static_cast<long long>(i));
  });
  const Snapshot snap = snapshot();
  std::size_t pairs = 0;
  for (const ThreadSnapshot& t : snap.threads) {
    std::size_t outers = 0, inners = 0;
    for (const Event& e : t.events) {
      if (std::string(e.name) == "outer") ++outers;
      if (std::string(e.name) == "inner") ++inners;
    }
    EXPECT_EQ(outers, inners) << "lane " << t.tid;
    pairs += outers;
  }
  EXPECT_EQ(pairs, 16u);
}

TEST_F(TraceThreadsTest, CountersAreRaceFreeAcrossWorkers) {
  enable();
  static Counter hits("test.concurrent_hits");
  run::parallel_for(64, 4, [](std::size_t) {
    for (int k = 0; k < 100; ++k) hits.add();
  });
  const Snapshot snap = snapshot();
  long long total = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.concurrent_hits") total = value;
  }
  EXPECT_EQ(total, 6400);
}

TEST_F(TraceThreadsTest, SnapshotWhileRecordingIsConsistent) {
  enable();
  std::atomic<bool> stop{false};
  run::ThreadPool pool(2);
  auto writer = pool.submit([&stop] {
    while (!stop.load()) {
      Span span("background", "test");
    }
  });
  // Concurrent snapshots must observe only fully written events.
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = snapshot();
    for (const ThreadSnapshot& t : snap.threads) {
      for (const Event& e : t.events) {
        ASSERT_NE(e.name, nullptr);
        ASSERT_NE(e.category, nullptr);
      }
    }
  }
  stop = true;
  writer.get();
}

TEST_F(TraceThreadsTest, SweepPointsTraceTheirIndex) {
  enable();
  std::vector<int> points{10, 11, 12, 13, 14, 15};
  run::SweepOptions opts;
  opts.jobs = 3;
  auto result = run::sweep(
      points, [](const int& p, std::size_t) { return p * 2; }, opts);
  ASSERT_EQ(result.results.size(), 6u);

  const Snapshot snap = snapshot();
  std::set<long long> indices;
  for (const ThreadSnapshot& t : snap.threads) {
    for (const Event& e : t.events) {
      if (std::string(e.name) == "sweep_point") indices.insert(e.arg);
    }
  }
  EXPECT_EQ(indices, (std::set<long long>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace sscl::trace
