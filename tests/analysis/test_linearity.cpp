#include "analysis/linearity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::analysis {
namespace {

/// Ideal n-bit quantiser over [0, 1).
int ideal_quantizer(double v, int codes) {
  const int c = static_cast<int>(std::floor(v * codes));
  return std::min(std::max(c, 0), codes - 1);
}

TEST(LinearityEdges, IdealQuantizerIsPerfect) {
  const LinearityResult r = measure_linearity_edges(
      [](double v) { return ideal_quantizer(v, 64); }, 64, 0.0, 1.0);
  EXPECT_LT(r.max_abs_dnl, 1e-6);
  EXPECT_LT(r.max_abs_inl, 1e-6);
  EXPECT_EQ(r.missing_codes, 0);
}

TEST(LinearityEdges, DetectsWideCode) {
  // Code 10 is twice as wide: its upper edge is shifted by one LSB.
  auto conv = [](double v) {
    const double lsb = 1.0 / 64;
    if (v >= 11 * lsb) v -= lsb;  // codes above 10 start one LSB late
    return ideal_quantizer(v, 64);
  };
  const LinearityResult r = measure_linearity_edges(conv, 64, 0.0, 1.0);
  EXPECT_NEAR(r.max_abs_dnl, 1.0, 0.1);
}

TEST(LinearityEdges, DetectsMissingCode) {
  auto conv = [](double v) {
    int c = ideal_quantizer(v, 64);
    if (c == 20) c = 21;  // code 20 never appears
    return c;
  };
  const LinearityResult r = measure_linearity_edges(conv, 64, 0.0, 1.0);
  EXPECT_GE(r.missing_codes, 1);
}

TEST(LinearityEdges, GainErrorRemovedByEndpointFit) {
  // A pure gain error must not register as INL.
  const LinearityResult r = measure_linearity_edges(
      [](double v) { return ideal_quantizer(v * 0.9, 64); }, 64, 0.0, 1.2);
  EXPECT_LT(r.max_abs_inl, 1e-6);
}

TEST(LinearityEdges, BowShowsAsInl) {
  // Quadratic transfer bow: INL ~ bow amplitude, DNL small.
  auto conv = [](double v) {
    const double bowed = v + 0.02 * std::sin(M_PI * v);
    return ideal_quantizer(bowed, 256);
  };
  const LinearityResult r = measure_linearity_edges(conv, 256, 0.0, 1.0);
  EXPECT_GT(r.max_abs_inl, 3.0);  // 0.02 of FS = ~5 LSB at 8 bits
  EXPECT_LT(r.max_abs_dnl, 0.5);
}

TEST(LinearityHistogram, UniformRampIsClean) {
  std::vector<int> codes;
  for (int k = 0; k < 64 * 100; ++k) {
    codes.push_back(ideal_quantizer((k + 0.5) / (64.0 * 100), 64));
  }
  const LinearityResult r = measure_linearity_histogram(codes, 64);
  EXPECT_LT(r.max_abs_dnl, 0.05);
  EXPECT_LT(r.max_abs_inl, 0.05);
}

TEST(LinearityHistogram, DetectsWideCode) {
  std::vector<int> codes;
  for (int k = 0; k < 64 * 200; ++k) {
    double v = (k + 0.5) / (64.0 * 200);
    const double lsb = 1.0 / 64;
    if (v >= 11 * lsb) v -= lsb;
    codes.push_back(ideal_quantizer(v, 64));
  }
  const LinearityResult r = measure_linearity_histogram(codes, 64);
  EXPECT_NEAR(r.max_abs_dnl, 1.0, 0.15);
}

TEST(LinearityHistogram, RejectsDegenerateInput) {
  EXPECT_THROW(measure_linearity_histogram({}, 16), std::invalid_argument);
  // All samples on end codes -> empty interior.
  EXPECT_THROW(measure_linearity_histogram({0, 0, 15, 15}, 16),
               std::invalid_argument);
}

}  // namespace
}  // namespace sscl::analysis
