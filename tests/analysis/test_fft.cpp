#include "analysis/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::analysis {
namespace {

TEST(Fft, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> z(3);
  EXPECT_THROW(fft(z), std::invalid_argument);
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<std::complex<double>> z(16, {0, 0});
  z[0] = {1, 0};
  fft(z);
  for (const auto& v : z) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, SingleToneLandsInBin) {
  const std::size_t n = 256;
  const int bin = 13;
  std::vector<std::complex<double>> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = std::cos(2 * M_PI * bin * i / static_cast<double>(n));
  }
  fft(z);
  EXPECT_NEAR(std::abs(z[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(z[n - bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(z[bin + 2]), 0.0, 1e-9);
}

TEST(Fft, RoundTripWithIfft) {
  std::vector<std::complex<double>> z(64);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = {std::sin(0.3 * i), std::cos(0.7 * i)};
  }
  const auto original = z;
  fft(z);
  ifft(z);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(std::abs(z[i] - original[i]), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> z(128);
  double time_energy = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = {std::sin(0.1 * i * i), 0.0};
    time_energy += std::norm(z[i]);
  }
  fft(z);
  double freq_energy = 0;
  for (const auto& v : z) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / z.size(), time_energy, 1e-9 * time_energy);
}

TEST(Spectrum, AmplitudeCalibrated) {
  const std::size_t n = 512;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.7 * std::sin(2 * M_PI * 31 * i / static_cast<double>(n)) + 0.2;
  }
  const auto mag = amplitude_spectrum(x);
  EXPECT_NEAR(mag[31], 0.7, 1e-9);
  EXPECT_NEAR(mag[0], 0.2, 1e-9);
}

TEST(Spectrum, HannReducesLeakage) {
  const std::size_t n = 512;
  // Non-coherent tone: rectangular leaks, Hann contains it.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2 * M_PI * 31.37 * i / static_cast<double>(n));
  }
  const auto rect = amplitude_spectrum(x, Window::kRect);
  const auto hann = amplitude_spectrum(x, Window::kHann);
  // Compare leakage far from the tone.
  EXPECT_LT(hann[100], 0.05 * rect[100] + 1e-12);
}

TEST(Spectrum, WindowCoefficientsSane) {
  const auto hann = window_coefficients(Window::kHann, 64);
  EXPECT_NEAR(hann[0], 0.0, 1e-12);
  EXPECT_NEAR(hann[32], 1.0, 1e-12);
  const auto bm = window_coefficients(Window::kBlackman, 64);
  EXPECT_NEAR(bm[0], 0.0, 1e-9);
  const auto rect = window_coefficients(Window::kRect, 8);
  for (double r : rect) EXPECT_EQ(r, 1.0);
}

}  // namespace
}  // namespace sscl::analysis
