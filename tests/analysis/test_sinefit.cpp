#include "analysis/sinefit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "adc/fai_adc.hpp"
#include "analysis/dynamic.hpp"
#include "util/rng.hpp"

namespace sscl::analysis {
namespace {

std::vector<double> make_sine(std::size_t n, double cycles, double amp,
                              double phase, double offset, double noise,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = offset + amp * std::sin(2 * M_PI * cycles * k / n + phase) +
             rng.gaussian(0.0, noise);
  }
  return out;
}

TEST(SineFit, ThreeParamRecoversCleanSine) {
  const auto x = make_sine(1024, 17, 0.8, 0.6, 0.25, 0.0, 1);
  const SineFit fit = sine_fit_3param(x, 17.0 / 1024);
  EXPECT_NEAR(fit.amplitude, 0.8, 1e-9);
  EXPECT_NEAR(fit.offset, 0.25, 1e-9);
  EXPECT_LT(fit.residual_rms, 1e-9);
  EXPECT_GT(fit.sinad_db, 150.0);
}

TEST(SineFit, ThreeParamSinadMatchesNoise) {
  const double noise = 0.01;
  const auto x = make_sine(4096, 61, 1.0, 0.0, 0.0, noise, 2);
  const SineFit fit = sine_fit_3param(x, 61.0 / 4096);
  EXPECT_NEAR(fit.residual_rms, noise, noise * 0.1);
  const double expected_sinad = 20 * std::log10((1 / std::sqrt(2.0)) / noise);
  EXPECT_NEAR(fit.sinad_db, expected_sinad, 0.5);
}

TEST(SineFit, FourParamRefinesFrequency) {
  const double true_cycles = 17.37;
  const auto x = make_sine(2048, true_cycles, 0.5, 1.0, 0.0, 0.0, 3);
  // Start 2% off.
  const SineFit fit = sine_fit_4param(x, 1.02 * true_cycles / 2048);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.frequency * 2048, true_cycles, 1e-6);
  EXPECT_NEAR(fit.amplitude, 0.5, 1e-6);
  EXPECT_LT(fit.residual_rms, 1e-6);
}

TEST(SineFit, RejectsTinyRecords) {
  EXPECT_THROW(sine_fit_3param(std::vector<double>(4), 0.1),
               std::invalid_argument);
  EXPECT_THROW(sine_fit_4param(std::vector<double>(4), 0.1),
               std::invalid_argument);
}

TEST(SineFit, AgreesWithFftEnobOnAdc) {
  // Cross-validation of the two lab methods on the actual converter.
  adc::FaiAdcConfig cfg;
  adc::FaiAdc adc_inst(cfg);
  const std::size_t record = 2048;
  const int cycles = coherent_cycles(record, 61);
  const double mid = 0.5 * (adc_inst.v_bottom() + adc_inst.v_top());
  const double amp = 0.495 * (adc_inst.v_top() - adc_inst.v_bottom());
  std::vector<double> samples(record);
  for (std::size_t k = 0; k < record; ++k) {
    const double ph = 2 * M_PI * cycles * static_cast<double>(k) / record;
    samples[k] = adc_inst.convert(mid + amp * std::sin(ph));
  }
  const DynamicMetrics fft = sine_test(samples, cycles);
  const SineFit fit =
      sine_fit_3param(samples, static_cast<double>(cycles) / record);
  EXPECT_NEAR(fit.enob, fft.enob, 0.3);
}

}  // namespace
}  // namespace sscl::analysis
