#include "analysis/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace sscl::analysis {
namespace {

std::vector<double> quantized_sine(std::size_t n, int cycles, int bits,
                                   double noise_lsb, std::uint64_t seed) {
  util::Rng rng(seed);
  const double full = std::pow(2.0, bits);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v =
        0.5 * full * (1.0 + 0.99 * std::sin(2 * M_PI * cycles * i / n));
    const double noisy = v + rng.gaussian(0.0, noise_lsb);
    out[i] = std::floor(std::min(std::max(noisy, 0.0), full - 1));
  }
  return out;
}

TEST(Dynamic, CoherentCyclesProperties) {
  const int m = coherent_cycles(4096, 61);
  EXPECT_EQ(m % 2, 1);
  EXPECT_LE(m, 61);
  EXPECT_EQ(std::gcd<std::size_t>(m, 4096), 1u);
  // Even requests step down to an odd co-prime.
  EXPECT_EQ(coherent_cycles(1024, 64) % 2, 1);
  EXPECT_EQ(coherent_cycles(100, 0), 1);
}

TEST(Dynamic, IdealQuantizerEnobNearBits) {
  const auto samples = quantized_sine(4096, 61, 8, 0.0, 1);
  const DynamicMetrics m = sine_test(samples, 61);
  EXPECT_NEAR(m.enob, 8.0, 0.35);
  EXPECT_GT(m.sndr_db, 45.0);
  EXPECT_EQ(m.signal_bin, 61);
}

TEST(Dynamic, NoiseDegradesEnob) {
  const auto clean = quantized_sine(4096, 61, 8, 0.0, 1);
  const auto noisy = quantized_sine(4096, 61, 8, 2.0, 1);
  EXPECT_GT(sine_test(clean, 61).enob, sine_test(noisy, 61).enob + 1.0);
}

TEST(Dynamic, FindsFundamentalAutomatically) {
  const auto samples = quantized_sine(2048, 33, 10, 0.0, 2);
  const DynamicMetrics m = sine_test(samples);
  EXPECT_EQ(m.signal_bin, 33);
}

TEST(Dynamic, DistortionLowersSfdr) {
  // Add a 3rd harmonic and verify SFDR tracks it.
  const std::size_t n = 4096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2 * M_PI * 61 * i / static_cast<double>(n);
    x[i] = std::sin(ph) + 0.01 * std::sin(3 * ph);
  }
  const DynamicMetrics m = sine_test(x, 61);
  EXPECT_NEAR(m.sfdr_db, 40.0, 1.0);  // 1% harmonic = -40 dBc
}

TEST(Dynamic, RejectsBadRecord) {
  EXPECT_THROW(sine_test(std::vector<double>(100)), std::invalid_argument);
  EXPECT_THROW(sine_test(std::vector<double>(4)), std::invalid_argument);
}

}  // namespace
}  // namespace sscl::analysis
