// The two static-timing-backed DRC rules: latch-depth-imbalance and
// zero-slack-phase. Each gets a seeded-bad netlist it must flag and a
// healthy variant (plus the real encoder) it must stay quiet on.

#include <gtest/gtest.h>

#include <string>

#include "digital/encoder.hpp"
#include "digital/netlist.hpp"
#include "lint/check.hpp"

namespace sscl::lint {
namespace {

using digital::Netlist;
using digital::SignalId;

/// One pipelined chain: input -> n_front bufs -> latch(H) -> n_back bufs
/// -> latch(L). Returns the final latch output.
SignalId chain(Netlist& nl, int n_front, int n_back, const std::string& tag) {
  auto s = nl.input("in_" + tag);
  for (int i = 0; i < n_front; ++i) {
    s = nl.buf(s, "f" + std::to_string(i) + "_" + tag);
  }
  s = nl.latch(s, true, "lh_" + tag);
  for (int i = 0; i < n_back; ++i) {
    s = nl.buf(s, "b" + std::to_string(i) + "_" + tag);
  }
  return nl.latch(s, false, "ll_" + tag);
}

TEST(LatchDepthImbalance, FiresOnLopsidedStages) {
  Netlist nl;
  nl.clock();
  // Stage 1 is a bare latch (depth 1); stage 2 carries two buffers plus
  // the latch (depth 3): imbalance 2, exactly at the warning threshold.
  auto s = nl.latch(nl.input("a"), true, "l1");
  s = nl.buf(s, "b0");
  s = nl.buf(s, "b1");
  nl.latch(s, false, "l2");

  const Report rep = check_netlist(nl);
  EXPECT_TRUE(rep.has("latch-depth-imbalance")) << rep.text();
  EXPECT_TRUE(rep.clean());  // warning, not error
}

TEST(LatchDepthImbalance, QuietOnBalancedPipelineAndEncoder) {
  Netlist nl;
  nl.clock();
  // Depths 1 and 2: imbalance below the threshold.
  auto s = nl.latch(nl.input("a"), true, "l1");
  s = nl.buf(s, "b0");
  nl.latch(s, false, "l2");
  EXPECT_FALSE(check_netlist(nl).has("latch-depth-imbalance"));

  Netlist enc;
  digital::build_fai_encoder(enc);
  EXPECT_FALSE(check_netlist(enc).has("latch-depth-imbalance"));
}

TEST(ZeroSlackPhase, FiresWhenOnePhaseCarriesAllTheLogic) {
  Netlist nl;
  nl.clock();
  // Four parallel chains, each with 4 buffers feeding the H-phase latch
  // and nothing before the L-phase latch: at fmax the H half-period is
  // exhausted (slack 0) while the L latches keep ~80% of theirs spare.
  for (int i = 0; i < 4; ++i) chain(nl, 4, 0, std::to_string(i));
  ASSERT_EQ(nl.latch_count(), 8);

  const Report rep = check_netlist(nl);
  ASSERT_TRUE(rep.has("zero-slack-phase")) << rep.text();
  for (const Diagnostic& d : rep.diagnostics()) {
    if (d.rule == "zero-slack-phase") {
      EXPECT_EQ(d.location, "phase high");
    }
  }
}

TEST(ZeroSlackPhase, QuietWhenPhasesShareTheBurden) {
  Netlist nl;
  nl.clock();
  // Same latch population, buffers split evenly: both phases bind.
  for (int i = 0; i < 4; ++i) chain(nl, 2, 2, std::to_string(i));
  EXPECT_FALSE(check_netlist(nl).has("zero-slack-phase"));
}

TEST(ZeroSlackPhase, SkipsToyPipelinesAndTheEncoder) {
  Netlist toy;
  toy.clock();
  chain(toy, 4, 0, "t");  // lopsided, but only two latches
  EXPECT_FALSE(check_netlist(toy).has("zero-slack-phase"));

  // The encoder's idle-phase margin at fmax is ~5% of the half-period,
  // far under the 40% threshold.
  Netlist enc;
  digital::build_fai_encoder(enc);
  EXPECT_FALSE(check_netlist(enc).has("zero-slack-phase"));
}

}  // namespace
}  // namespace sscl::lint
