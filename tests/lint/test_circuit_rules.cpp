// One test per analog ERC rule: a clean circuit passes, a seeded
// violation is reported with the right rule id and location.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "device/mosfet.hpp"
#include "lint/check.hpp"
#include "lint/circuit_view.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"

namespace sscl::lint {
namespace {

using device::MosGeometry;
using device::Mosfet;
using device::Process;
using spice::Capacitor;
using spice::Circuit;
using spice::CurrentSource;
using spice::kGround;
using spice::NodeId;
using spice::Resistor;
using spice::SourceSpec;
using spice::VoltageSource;

const Process kProc = Process::c180();
const MosGeometry kGeo{2e-6, 1e-6, 0, 0};

const Diagnostic* find_diag(const Report& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

TEST(LintCircuit, CleanDividerPasses) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId mid = c.node("mid");
  c.add<VoltageSource>("V1", vdd, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", vdd, mid, 1e3);
  c.add<Resistor>("R2", mid, kGround, 1e3);
  const Report r = check_circuit(c);
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(r.count(Severity::kWarning), 0) << r.text();
}

TEST(LintCircuit, FloatingNodeIsland) {
  Circuit c;
  c.add<VoltageSource>("V1", c.node("vdd"), kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("Rload", c.node("vdd"), kGround, 1e6);
  // Resistive island with no ground reference.
  c.add<Resistor>("R1", c.node("a"), c.node("b"), 1e3);
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "floating-node");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("a"), std::string::npos);

  // Disabling works by diagnostic id as well as by family rule id.
  Options by_diag;
  by_diag.disabled = {"floating-node"};
  EXPECT_EQ(find_diag(check_circuit(c, by_diag), "floating-node"), nullptr);
  Options by_rule;
  by_rule.disabled = {"dc-path"};
  EXPECT_EQ(find_diag(check_circuit(c, by_rule), "floating-node"), nullptr);
}

TEST(LintCircuit, CurrentSourceCutset) {
  Circuit c;
  c.add<CurrentSource>("I1", kGround, c.node("n"), SourceSpec::dc(1e-9));
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "isource-cutset");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "n");
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(LintCircuit, CapOnlyNode) {
  Circuit c;
  c.add<Capacitor>("C1", c.node("hold"), kGround, 1e-12);
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "cap-only-node");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "hold");
}

TEST(LintCircuit, DanglingMosGateInput) {
  Circuit c;
  c.add<Resistor>("R1", c.node("d"), kGround, 1e6);
  c.add<Mosfet>("M1", c.node("d"), c.node("g"), kGround, kGround, kProc.nmos,
                kGeo);
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "dangling-input");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "g");
}

TEST(LintCircuit, VoltageSourceLoop) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", a, kGround, SourceSpec::dc(1.0));
  c.add<VoltageSource>("V2", a, kGround, SourceSpec::dc(2.0));
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "vsource-loop");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "V2");
}

TEST(LintCircuit, EngineRefusesVoltageSourceLoop) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", a, kGround, SourceSpec::dc(1.0));
  c.add<VoltageSource>("V2", a, kGround, SourceSpec::dc(2.0));
  EXPECT_THROW(spice::Engine engine(c), LintError);
}

TEST(LintCircuit, EngineLintOptOutFlag) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", a, kGround, SourceSpec::dc(1.0));
  c.add<VoltageSource>("V2", a, kGround, SourceSpec::dc(1.0));
  spice::SolverOptions opts;
  opts.lint = false;
  EXPECT_NO_THROW(spice::Engine engine(c, opts));
}

TEST(LintCircuit, DanglingTerminalWarning) {
  Circuit c;
  c.add<VoltageSource>("V1", c.node("vdd"), kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("Rload", c.node("vdd"), kGround, 1e6);
  // "stub" is touched by exactly one terminal; grounded through R2.
  c.add<Resistor>("R2", c.node("stub"), kGround, 1e3);
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "dangling-terminal");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "stub");
  EXPECT_TRUE(r.clean()) << r.text();
}

TEST(LintCircuit, UnusedNodeInfoAndOptOut) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), kGround, 1e3);
  c.add<VoltageSource>("V1", c.node("a"), kGround, SourceSpec::dc(1.0));
  c.node("spare");
  Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "unused-node");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "spare");
  EXPECT_EQ(d->severity, Severity::kInfo);

  Options no_info;
  no_info.include_info = false;
  EXPECT_EQ(find_diag(check_circuit(c, no_info), "unused-node"), nullptr);

  Options disabled;
  disabled.disabled = {"unused-node"};
  EXPECT_EQ(find_diag(check_circuit(c, disabled), "unused-node"), nullptr);
}

TEST(LintCircuit, ElementValueRejectsNonPhysical) {
  // The element constructors reject plain non-positive values, but NaN
  // slips through every comparison — exactly the case lint must catch
  // before it poisons the Jacobian.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Circuit c;
  c.add<VoltageSource>("V1", c.node("a"), kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("Rnan", c.node("a"), kGround, nan);
  c.add<Capacitor>("Cnan", c.node("a"), kGround, nan);
  c.add<Capacitor>("Czero", c.node("a"), kGround, 0.0);
  const Report r = check_circuit(c);
  int errors = 0, infos = 0;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule != "element-value") continue;
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kInfo) ++infos;
  }
  EXPECT_EQ(errors, 2) << r.text();  // two non-finite values
  EXPECT_EQ(infos, 1) << r.text();   // zero capacitance
}

TEST(LintCircuit, UnbiasedSourceCoupledPair) {
  Circuit c;
  const NodeId s = c.node("tail");
  c.add<VoltageSource>("Vg", c.node("g"), kGround, SourceSpec::dc(0.5));
  c.add<Resistor>("Rd1", c.node("d1"), kGround, 1e6);
  c.add<Resistor>("Rd2", c.node("d2"), kGround, 1e6);
  c.add<Mosfet>("M1", c.node("d1"), c.node("g"), s, kGround, kProc.nmos, kGeo);
  c.add<Mosfet>("M2", c.node("d2"), c.node("g"), s, kGround, kProc.nmos, kGeo);
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "unbiased-tail");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "tail");
  EXPECT_NE(d->message.find("M1"), std::string::npos);

  // Adding a tail current source fixes it.
  c.add<CurrentSource>("Iss", s, kGround, SourceSpec::dc(1e-10));
  EXPECT_EQ(find_diag(check_circuit(c), "unbiased-tail"), nullptr);
}

TEST(LintCircuit, WeakInversionBiasWindow) {
  auto build = [](double iss) {
    auto c = std::make_unique<Circuit>();
    const NodeId s = c->node("tail");
    c->add<VoltageSource>("Vg", c->node("g"), kGround, SourceSpec::dc(0.5));
    c->add<Resistor>("Rd1", c->node("d1"), kGround, 1e6);
    c->add<Resistor>("Rd2", c->node("d2"), kGround, 1e6);
    c->add<Mosfet>("M1", c->node("d1"), c->node("g"), s, kGround, kProc.nmos,
                   kGeo);
    c->add<Mosfet>("M2", c->node("d2"), c->node("g"), s, kGround, kProc.nmos,
                   kGeo);
    c->add<CurrentSource>("Iss", s, kGround, SourceSpec::dc(iss));
    return c;
  };
  // 100 pA on a 2u/1u pair is deep weak inversion: no finding.
  EXPECT_EQ(find_diag(check_circuit(*build(1e-10)), "weak-inversion-bias"),
            nullptr);
  // 1 mA is strong inversion: warn.
  const Report r = check_circuit(*build(1e-3));
  const Diagnostic* d = find_diag(r, "weak-inversion-bias");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "tail");
}

// A device that cannot describe itself downgrades connectivity findings
// to warnings: lint cannot rule out that it provides the missing path.
class OpaqueDevice final : public spice::Device {
 public:
  explicit OpaqueDevice(std::string name) : Device(std::move(name)) {}
  void load(spice::LoadContext&) override {}
};

TEST(LintCircuit, UndescribedDeviceDowngradesToWarning) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), c.node("b"), 1e3);
  c.add<OpaqueDevice>("U1");
  CircuitView view(c);
  EXPECT_FALSE(view.fully_described());
  const Report r = check_circuit(c);
  const Diagnostic* d = find_diag(r, "floating-node");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_TRUE(r.clean());
}

}  // namespace
}  // namespace sscl::lint
