// Tests for the interprocedural dataflow passes and the pass manager:
// bias-current provenance (the paper's one-knob IB property, verified
// on STSCL counter/ADC decks), voltage-domain inference, constant and
// dead-net folding through the simulator's gate models, transitive
// phase-domain races — plus dependency-respecting scheduling and the
// byte-identical-at-any-jobs determinism contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "device/deck_parser.hpp"
#include "digital/netlist.hpp"
#include "lint/check.hpp"
#include "lint/pass.hpp"
#include "lint/rule.hpp"

namespace sscl::lint {
namespace {

const Diagnostic* find_diag(const Report& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

int count_diag(const Report& r, const std::string& rule) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

/// Warnings emitted by one rule. The provenance tests use deliberately
/// toy decks (pA tails into Mohm loads) that the op-region pass rightly
/// flags for swing, so they scope their clean-run asserts to their rule.
int count_rule_warnings(const Report& r, const std::string& rule) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule && d.severity == Severity::kWarning) ++n;
  }
  return n;
}

Report lint_deck(const std::string& text, const Options& options = {}) {
  const device::ParsedDeck deck = device::parse_deck(text);
  return check_circuit(*deck.circuit, options);
}

// ---- bias-current provenance -----------------------------------------

constexpr const char* kMirrorDeck = R"(
* one IB root, diode master MB, 2x mirror slave MT feeding the pair tail
Vdd vdd 0 1.0
Ib vdd vbn 100p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
Vip inp 0 0.55
Vin inn 0 0.45
Rl1 vdd outp 10meg
Rl2 vdd outn 10meg
M1 outp inp tail 0 nmos_hvt W=2u L=1u
M2 outn inn tail 0 nmos_hvt W=2u L=1u
MT tail vbn 0 0 nmos_hvt W=4u L=1u
.op
.end
)";

TEST(BiasProvenance, MirrorBiasedTailTraces) {
  const Report r = lint_deck(kMirrorDeck);
  EXPECT_EQ(count_rule_warnings(r, "bias-provenance"), 0) << r.text();
  const Diagnostic* d = find_diag(r, "bias-provenance");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_NE(d->message.find("one-knob property holds"), std::string::npos)
      << d->message;
}

TEST(BiasProvenance, OrphanTailFlagged) {
  const Report r = lint_deck(R"(
* resistor-biased tail: satisfies unbiased-tail but has no IB root
Vdd vdd 0 1.0
Vip inp 0 0.55
Vin inn 0 0.45
Rl1 vdd outp 10meg
Rl2 vdd outn 10meg
M1 outp inp tail 0 nmos_hvt W=2u L=1u
M2 outn inn tail 0 nmos_hvt W=2u L=1u
Rt tail 0 5meg
.op
.end
)");
  EXPECT_EQ(count_diag(r, "unbiased-tail"), 0) << r.text();
  const Diagnostic* d = find_diag(r, "bias-provenance");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "tail");
  EXPECT_FALSE(d->fix.empty());
}

TEST(BiasProvenance, MirrorRatioBudget) {
  // 100 pA root + 2x mirrored slave = 300 pA estimated total.
  Options over;
  over.bias_budget = 150e-12;
  const Report flagged = lint_deck(kMirrorDeck, over);
  const Diagnostic* d = find_diag(flagged, "bias-provenance");
  ASSERT_NE(d, nullptr);
  bool has_budget_warning = false;
  for (const Diagnostic& diag : flagged.diagnostics()) {
    if (diag.rule == "bias-provenance" &&
        diag.severity == Severity::kWarning) {
      has_budget_warning = true;
      EXPECT_NE(diag.message.find("exceeds the declared budget"),
                std::string::npos)
          << diag.message;
      EXPECT_NE(diag.message.find("MT"), std::string::npos) << diag.message;
    }
  }
  EXPECT_TRUE(has_budget_warning) << flagged.text();

  Options under;
  under.bias_budget = 1e-9;
  const Report clean = lint_deck(kMirrorDeck, under);
  EXPECT_EQ(count_rule_warnings(clean, "bias-provenance"), 0) << clean.text();
}

TEST(BiasProvenance, OneKnobHoldsOnCounterAndAdcDecks) {
  const char* decks[] = {
      // STSCL counter slice: one IB programs both latch-rank tails.
      R"(
Vdd vdd 0 1.0
Ib vdd vbn 100p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
Vca clka 0 0.55
Vcb clkb 0 0.45
Rl1 vdd q1p 10meg
Rl2 vdd q1n 10meg
M1 q1p clka t1 0 nmos_hvt W=2u L=1u
M2 q1n clkb t1 0 nmos_hvt W=2u L=1u
MT1 t1 vbn 0 0 nmos_hvt W=2u L=1u
Rl3 vdd q2p 10meg
Rl4 vdd q2n 10meg
M3 q2p q1p t2 0 nmos_hvt W=2u L=1u
M4 q2n q1n t2 0 nmos_hvt W=2u L=1u
MT2 t2 vbn 0 0 nmos_hvt W=2u L=1u
.op
.end
)",
      // Flash-ADC front end: ladder plus two preamps off one IB.
      R"(
Vdd vdd 0 1.0
Vin vin 0 0.5
Ib vdd vbn 200p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
R1 vdd r1 1meg
R2 r1 r2 1meg
R3 r2 0 1meg
Ra1 vdd a1p 10meg
Ra2 vdd a1n 10meg
M1 a1p vin ta1 0 nmos_hvt W=2u L=1u
M2 a1n r1 ta1 0 nmos_hvt W=2u L=1u
MT1 ta1 vbn 0 0 nmos_hvt W=2u L=1u
Rb1 vdd a2p 10meg
Rb2 vdd a2n 10meg
M3 a2p vin ta2 0 nmos_hvt W=2u L=1u
M4 a2n r2 ta2 0 nmos_hvt W=2u L=1u
MT2 ta2 vbn 0 0 nmos_hvt W=2u L=1u
.op
.end
)"};
  for (const char* deck : decks) {
    const Report r = lint_deck(deck);
    EXPECT_EQ(count_rule_warnings(r, "bias-provenance"), 0) << r.text();
    const Diagnostic* d = find_diag(r, "bias-provenance");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("all 2 source-coupled tail(s)"),
              std::string::npos)
        << d->message;
  }
}

// ---- voltage-domain inference ----------------------------------------

TEST(DomainCrossing, UnshiftedCrossingFlagged) {
  const Report r = lint_deck(R"(
Vdd vdd 0 0.5
Vddh vddh 0 1.0
Vbias inb 0 0.3
Rl vdd lo 1meg
M1 lo inb 0 0 nmos_hvt W=2u L=1u
Rh vddh out 1meg
M2 out lo 0 0 nmos_hvt W=2u L=1u
.op
.end
)");
  const Diagnostic* d = find_diag(r, "domain-crossing");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "M2");
  EXPECT_NE(d->message.find("Vdd"), std::string::npos);
  EXPECT_NE(d->message.find("Vddh"), std::string::npos);
}

TEST(DomainCrossing, LevelShifterNameExempt) {
  const Report r = lint_deck(R"(
Vdd vdd 0 0.5
Vddh vddh 0 1.0
Vbias inb 0 0.3
Rl vdd lo 1meg
M1 lo inb 0 0 nmos_hvt W=2u L=1u
Rh vddh hi 1meg
MLS1 hi lo 0 0 nmos_hvt W=2u L=1u
Rh2 vddh out 1meg
M2 out hi 0 0 nmos_hvt W=2u L=1u
.op
.end
)");
  EXPECT_EQ(count_diag(r, "domain-crossing"), 0) << r.text();
  EXPECT_EQ(r.count(Severity::kWarning), 0) << r.text();
}

TEST(DomainCrossing, BridgedRailsFlagged) {
  const Report r = lint_deck(R"(
Vdd vdd 0 1.0
Vdda avdd 0 1.0
Rbridge vdd avdd 1k
Rload vdd 0 1meg
Rload2 avdd 0 1meg
.op
.end
)");
  const Diagnostic* d = find_diag(r, "domain-crossing");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_NE(d->message.find("conductively connected"), std::string::npos);
}

TEST(DomainCrossing, SingleSupplyStaysSilent) {
  const Report r = lint_deck(R"(
Vdd vdd 0 1.0
R1 vdd mid 1k
R2 mid 0 1k
.op
.end
)");
  EXPECT_EQ(count_diag(r, "domain-crossing"), 0) << r.text();
}

// ---- constant & dead-net propagation ---------------------------------

TEST(ConstNet, SharedInputIdentitiesFold) {
  digital::Netlist nl;
  const auto a = nl.input("a");
  nl.xor2(a, a, "gx");                       // x ^ x == 0
  nl.and2(a, ~digital::Ref(a), "ga");        // x & ~x == 0
  nl.mux2(nl.input("s"), a, a, "gm");        // mux(s, a, a) == a: not const
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "const-net"), 2) << r.text();
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule != "const-net") continue;
    EXPECT_NE(d.message.find("constant 0"), std::string::npos) << d.message;
  }
}

TEST(ConstNet, ConstantsPropagateThroughGateModels) {
  digital::Netlist nl;
  const auto a = nl.input("a");
  const auto zero = nl.xor2(a, a, "gzero");        // 0
  const auto one = nl.or2(zero, ~digital::Ref(zero), "gone");  // 1
  nl.and2(one, a, "gand");  // 1 & a == a: non-constant
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "const-net"), 2) << r.text();
  const Diagnostic* d = find_diag(r, "const-net");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->fix.empty());
}

TEST(ConstNet, DeadConeBehindConstantFlagged) {
  digital::Netlist nl;
  const auto a = nl.input("a");
  const auto feeder = nl.buf(a, "gfeeder");
  nl.xor2(feeder, feeder, "gconst");  // const 0, only consumer of feeder
  nl.buf(a, "gout");                  // live block output
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "const-net"), 1) << r.text();
  const Diagnostic* dead = find_diag(r, "dead-net");
  ASSERT_NE(dead, nullptr) << r.text();
  EXPECT_EQ(dead->location, "gfeeder");
}

TEST(ConstNet, CleanLogicStaysSilent) {
  digital::Netlist nl;
  const auto a = nl.input("a");
  const auto b = nl.input("b");
  const auto x = nl.xor2(a, b, "gx");
  nl.and2(x, a, "gand");
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "const-net"), 0) << r.text();
  EXPECT_EQ(count_diag(r, "dead-net"), 0) << r.text();
}

// ---- phase-domain checking -------------------------------------------

TEST(PhaseDomain, TransitiveSamePhaseRaceFlagged) {
  digital::Netlist nl;
  nl.clock();
  const auto d = nl.input("d");
  const auto l1 = nl.latch(d, true, "l1");
  const auto b = nl.buf(l1, "b");
  nl.latch(b, true, "l2");  // same phase, through combinational logic
  const Report r = check_netlist(nl);
  // The direct rule must NOT fire (no latch drives l2 directly)...
  EXPECT_EQ(count_diag(r, "latch-phase"), 0) << r.text();
  // ...but the whole-pipeline colouring must.
  const Diagnostic* diag = find_diag(r, "phase-domain");
  ASSERT_NE(diag, nullptr) << r.text();
  EXPECT_EQ(diag->location, "l2");
}

TEST(PhaseDomain, DirectRaceLeftToLatchPhaseRule) {
  digital::Netlist nl;
  nl.clock();
  const auto d = nl.input("d");
  const auto l1 = nl.latch(d, true, "l1");
  nl.latch(l1, true, "l2");  // direct: the local rule owns this
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "latch-phase"), 1) << r.text();
  EXPECT_EQ(count_diag(r, "phase-domain"), 0) << r.text();
}

TEST(PhaseDomain, AlternatingPipelineClean) {
  digital::Netlist nl;
  nl.clock();
  const auto d = nl.input("d");
  const auto l1 = nl.latch(d, true, "l1");
  const auto b1 = nl.buf(l1, "b1");
  const auto l2 = nl.latch(b1, false, "l2");
  const auto b2 = nl.buf(l2, "b2");
  nl.latch(b2, true, "l3");
  const Report r = check_netlist(nl);
  EXPECT_EQ(count_diag(r, "phase-domain"), 0) << r.text();
  EXPECT_EQ(count_diag(r, "latch-phase"), 0) << r.text();
}

// ---- pass manager ----------------------------------------------------

TEST(PassManager, WavesRespectDependencies) {
  PassManager manager(make_default_passes());
  std::vector<int> all;
  for (int i = 0; i < static_cast<int>(manager.passes().size()); ++i) {
    all.push_back(i);
  }
  const auto waves = manager.schedule(all);
  ASSERT_GE(waves.size(), 2u);  // the dataflow passes depend on DRC rules

  std::vector<int> wave_of(manager.passes().size(), -1);
  for (int w = 0; w < static_cast<int>(waves.size()); ++w) {
    for (const int pi : waves[w]) wave_of[pi] = w;
  }
  for (const int pi : all) {
    EXPECT_GE(wave_of[pi], 0);
    for (const char* dep : manager.passes()[pi]->depends_on()) {
      for (const int di : all) {
        if (std::string(manager.passes()[di]->id()) == dep) {
          EXPECT_LT(wave_of[di], wave_of[pi])
              << manager.passes()[pi]->id() << " must run after " << dep;
        }
      }
    }
  }
}

TEST(PassManager, OnlySelectionFilters) {
  Options options;
  options.only = {"element-value"};
  const Report r = lint_deck(kMirrorDeck, options);
  for (const Diagnostic& d : r.diagnostics()) {
    EXPECT_EQ(d.rule, "element-value") << d.rule;
  }
}

TEST(PassManager, ReportBytesIdenticalAtAnyJobs) {
  const char* deck = R"(
Vdd vdd 0 0.5
Vddh vddh 0 1.0
Vbias inb 0 0.3
Rl vdd lo 1meg
M1 lo inb 0 0 nmos_hvt W=2u L=1u
Rh vddh out 1meg
M2 out lo 0 0 nmos_hvt W=2u L=1u
Mp outp lo tail 0 nmos_hvt W=2u L=1u
Mn outn inb tail 0 nmos_hvt W=2u L=1u
Rp vdd outp 10meg
Rn vdd outn 10meg
Rt tail 0 5meg
.op
.end
)";
  Options serial;
  serial.jobs = 1;
  Options parallel;
  parallel.jobs = 8;
  const std::string a = lint_deck(deck, serial).text();
  const std::string b = lint_deck(deck, parallel).text();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(PassManager, LegacyRuleAliasStillWorks) {
  const auto rules = make_default_rules();
  const auto passes = make_default_passes();
  ASSERT_EQ(rules.size(), passes.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_STREQ(rules[i]->id(), passes[i]->id());
  }
}

}  // namespace
}  // namespace sscl::lint
