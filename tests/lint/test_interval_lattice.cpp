// Property tests for the IntervalLattice and the interval arithmetic it
// is built on: lattice laws (commutativity, associativity, idempotence,
// absorption, the partial order induced by join), the widening contract
// (an ascending chain widened pointwise stabilises in finitely many
// steps and over-approximates every iterate), and randomized containment
// of the arithmetic operators — for random boxes and random points
// inside them, the pointwise result always lands inside the interval
// result. These are the soundness axioms the op-region abstract
// interpreter rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lint/lattice.hpp"
#include "util/interval.hpp"
#include "util/rng.hpp"

namespace sscl::lint {
namespace {

using util::Interval;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Random interval generator covering empties, points, finite boxes and
/// half/fully unbounded boxes.
Interval random_interval(util::Rng& rng) {
  const double shape = rng.uniform();
  if (shape < 0.05) return Interval::empty();
  if (shape < 0.15) return Interval::point(rng.uniform(-10.0, 10.0));
  if (shape < 0.25) return Interval{-kInf, rng.uniform(-10.0, 10.0)};
  if (shape < 0.35) return Interval{rng.uniform(-10.0, 10.0), kInf};
  if (shape < 0.40) return Interval::top();
  return Interval::make(rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0));
}

/// A random point of a non-empty interval (finite even for unbounded
/// intervals — the containment properties quantify over real points).
double random_point(util::Rng& rng, const Interval& iv) {
  const double lo = std::isfinite(iv.lo) ? iv.lo : -20.0;
  const double hi = std::isfinite(iv.hi) ? iv.hi : 20.0;
  if (lo >= hi) return lo;
  return rng.uniform(lo, hi);
}

// ---- lattice laws -----------------------------------------------------

TEST(IntervalLattice, JoinLaws) {
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Interval a = random_interval(rng);
    const Interval b = random_interval(rng);
    const Interval c = random_interval(rng);
    // Commutative, associative, idempotent.
    EXPECT_EQ(IntervalLattice::join(a, b), IntervalLattice::join(b, a));
    EXPECT_EQ(IntervalLattice::join(a, IntervalLattice::join(b, c)),
              IntervalLattice::join(IntervalLattice::join(a, b), c));
    EXPECT_EQ(IntervalLattice::join(a, a), a);
    // Bottom is the identity of join.
    EXPECT_EQ(IntervalLattice::join(a, IntervalLattice::bottom()), a);
    // Join is an upper bound of both operands.
    const Interval j = IntervalLattice::join(a, b);
    EXPECT_TRUE(IntervalLattice::leq(a, j));
    EXPECT_TRUE(IntervalLattice::leq(b, j));
  }
}

TEST(IntervalLattice, MeetLaws) {
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Interval a = random_interval(rng);
    const Interval b = random_interval(rng);
    EXPECT_EQ(IntervalLattice::meet(a, b), IntervalLattice::meet(b, a));
    EXPECT_EQ(IntervalLattice::meet(a, a), a);
    // Top is the identity of meet; bottom annihilates.
    EXPECT_EQ(IntervalLattice::meet(a, IntervalLattice::top()), a);
    EXPECT_TRUE(
        IntervalLattice::meet(a, IntervalLattice::bottom()).is_empty());
    // Meet is a lower bound of both operands.
    const Interval m = IntervalLattice::meet(a, b);
    EXPECT_TRUE(IntervalLattice::leq(m, a));
    EXPECT_TRUE(IntervalLattice::leq(m, b));
    // Absorption: a join (a meet b) == a.
    EXPECT_EQ(IntervalLattice::join(a, IntervalLattice::meet(a, b)), a);
  }
}

TEST(IntervalLattice, PartialOrderAgreesWithJoin) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Interval a = random_interval(rng);
    const Interval b = random_interval(rng);
    // a <= b  iff  a join b == b (definition of a join-semilattice order).
    EXPECT_EQ(IntervalLattice::leq(a, b),
              IntervalLattice::join(a, b) == b);
  }
}

TEST(IntervalLattice, WideningCoversBothAndStabilises) {
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Interval acc = random_interval(rng);
    // An arbitrary chain of widenings stabilises after at most two
    // non-trivial steps (each endpoint can only jump to infinity once),
    // and every widened iterate covers the new value.
    int changes = 0;
    for (int k = 0; k < 20; ++k) {
      const Interval next = random_interval(rng);
      const Interval w = IntervalLattice::widen(acc, next);
      EXPECT_TRUE(IntervalLattice::leq(acc, w));
      EXPECT_TRUE(IntervalLattice::leq(next, w));
      if (w != acc) ++changes;
      acc = w;
    }
    EXPECT_LE(changes, 3);  // empty->value, lo->-inf, hi->+inf
  }
}

// ---- arithmetic containment ------------------------------------------

TEST(IntervalArithmetic, RandomizedContainment) {
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Interval a = random_interval(rng);
    const Interval b = random_interval(rng);
    if (a.is_empty() || b.is_empty()) continue;
    const double x = random_point(rng, a);
    const double y = random_point(rng, b);
    EXPECT_TRUE((a + b).contains(x + y));
    EXPECT_TRUE((a - b).contains(x - y));
    EXPECT_TRUE((-a).contains(-x));
    EXPECT_TRUE((a * b).contains(x * y)) << x << " * " << y;
    if (!(b.lo <= 0.0 && b.hi >= 0.0)) {
      EXPECT_TRUE((a / b).contains(x / y));
    }
    EXPECT_TRUE(util::interval_abs(a).contains(std::fabs(x)));
    if (a.hi >= 0.0 && x >= 0.0) {
      EXPECT_TRUE(util::interval_sqrt(a).contains(std::sqrt(x)));
    }
    EXPECT_TRUE(util::interval_min(a, b).contains(std::min(x, y)));
    EXPECT_TRUE(util::interval_max(a, b).contains(std::max(x, y)));
    EXPECT_TRUE(a.map_increasing([](double v) { return std::tanh(v); })
                    .contains(std::tanh(x)));
    EXPECT_TRUE(a.map_decreasing([](double v) { return -v * 3.0; })
                    .contains(-x * 3.0));
  }
}

TEST(IntervalArithmetic, OperationsAreInclusionIsotone) {
  // A nested input box yields a nested result: the property that makes
  // descending refinement sound when operands tighten between sweeps.
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const Interval a = random_interval(rng);
    const Interval b = random_interval(rng);
    if (a.is_empty() || b.is_empty()) continue;
    const Interval a2 =
        a.intersect(Interval::make(random_point(rng, a), random_point(rng, a)));
    const Interval b2 =
        b.intersect(Interval::make(random_point(rng, b), random_point(rng, b)));
    EXPECT_TRUE((a + b).contains(a2 + b2));
    EXPECT_TRUE((a - b).contains(a2 - b2));
    EXPECT_TRUE((a * b).contains(a2 * b2));
    EXPECT_TRUE(util::interval_abs(a).contains(util::interval_abs(a2)));
    EXPECT_TRUE(a.hull(b).contains(a2.hull(b2)));
  }
}

TEST(IntervalArithmetic, ZeroTimesUnboundedIsZero) {
  // The 0 * inf = 0 convention: an exact zero factor annihilates an
  // unbounded one (sound for set semantics, keeps NaN out).
  const Interval zero = Interval::point(0.0);
  EXPECT_EQ(zero * Interval::top(), zero);
  EXPECT_EQ(Interval::top() * zero, zero);
  const Interval half{0.0, kInf};
  const Interval p = half * Interval::point(2.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_EQ(p.hi, kInf);
}

TEST(IntervalArithmetic, PadAndWidenPreserveContainment) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Interval a = random_interval(rng);
    if (a.is_empty()) continue;
    const double x = random_point(rng, a);
    EXPECT_TRUE(a.pad(1e-9).contains(x));
    EXPECT_TRUE(a.pad(0.0).contains(a));
  }
}

}  // namespace
}  // namespace sscl::lint
