// The op-region soundness oracle: for every committed deck, DC-solve at
// randomized corners inside the declared PVT box and assert that every
// solved node voltage (and independent-vsource branch current) lies
// inside the intervals the static analysis published for that box. This
// is the CI contract backing the "certified" verdicts: if the abstract
// interpreter ever excludes a reachable operating point, this test
// fails before the optimistic diagnostic ships.
//
// Corners combine the four box extremes with seeded-random interior
// points (>= 8 per deck). Supply corners are applied by rewriting the
// supply-named source values in the deck text; temperature corners by
// re-deriving the process with Process::at_temperature — exactly the
// dependences the interval evaluator mirrors. Decks that do not solve
// at a corner (the bad_* decks exist to fail) are skipped there; decks
// with no solvable corner contribute nothing, never a false pass.

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "device/deck_parser.hpp"
#include "lint/check.hpp"
#include "lint/circuit_view.hpp"
#include "lint/ir.hpp"
#include "lint/op_region.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sscl::lint {
namespace {

namespace fs = std::filesystem;

struct Corner {
  double t_k = 300.15;
  double vdd_scale = 1.0;
};

/// Rewrite the value field of every supply-named voltage-source card.
/// Only plain `Vname node node value` cards are rewritten; anything
/// fancier fails the test (committed decks keep their supplies simple
/// so the oracle stays honest).
std::string scale_supplies(const std::string& text, double scale) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::vector<std::string> tok;
    std::string t;
    while (ls >> t) tok.push_back(t);
    if (!tok.empty() && (tok[0][0] == 'V' || tok[0][0] == 'v') &&
        is_supply_name(tok[0])) {
      EXPECT_EQ(tok.size(), 4u) << "unscalable supply card: " << line;
      const auto value = util::parse_si(tok[3]);
      EXPECT_TRUE(value.has_value()) << line;
      std::ostringstream rewritten;
      rewritten.precision(17);
      rewritten << tok[0] << " " << tok[1] << " " << tok[2] << " "
                << *value * scale;
      out << rewritten.str() << "\n";
    } else {
      out << line << "\n";
    }
  }
  return out.str();
}

std::vector<fs::path> committed_decks() {
  std::vector<fs::path> decks;
  for (const auto& entry : fs::directory_iterator(SSCL_LINT_DECK_DIR)) {
    if (entry.path().extension() == ".sp") decks.push_back(entry.path());
  }
  std::sort(decks.begin(), decks.end());
  return decks;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(OpRegionOracle, EverySolvedCornerLiesInsideTheStaticIntervals) {
  const double t_lo = 273.15;         // 0 C
  const double t_hi = 273.15 + 85.0;  // 85 C
  const double vdd_tol = 0.10;

  const std::vector<fs::path> decks = committed_decks();
  ASSERT_FALSE(decks.empty());

  int solved_corners = 0;
  for (const fs::path& path : decks) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);

    // ---- static intervals over the box (nominal parse) ---------------
    device::ParsedDeck nominal;
    try {
      nominal = device::parse_deck(text);
    } catch (const device::DeckError&) {
      continue;  // not this oracle's concern (parser tests cover it)
    }
    const CircuitView view(*nominal.circuit);
    const AnalysisIR ir = AnalysisIR::build(view);
    OpRegionOptions box;
    box.t_lo_k = t_lo;
    box.t_hi_k = t_hi;
    box.vdd_tol = vdd_tol;
    const OpRegionResult result = analyze_op_region(view, ir, box);

    // Node-name -> interval map (corner parses renumber identically,
    // but matching by name keeps the oracle independent of that).
    std::map<std::string, util::Interval> by_name;
    for (int s = 1; s < view.slot_count(); ++s) {
      by_name[view.node_label(view.node_of_slot(s))] = result.node_v[s];
    }
    std::map<std::string, util::Interval> branch_by_name;
    for (int di = 0; di < static_cast<int>(view.devices().size()); ++di) {
      if (!result.branch_i[di].is_empty()) {
        branch_by_name[view.devices()[di].device->name()] =
            result.branch_i[di];
      }
    }

    // ---- corners: 4 extremes + seeded-random interior points ---------
    std::vector<Corner> corners = {{t_lo, 1.0 - vdd_tol},
                                   {t_lo, 1.0 + vdd_tol},
                                   {t_hi, 1.0 - vdd_tol},
                                   {t_hi, 1.0 + vdd_tol}};
    util::Rng rng(0xC0FFEEu);
    while (corners.size() < 10) {
      corners.push_back({rng.uniform(t_lo, t_hi),
                         rng.uniform(1.0 - vdd_tol, 1.0 + vdd_tol)});
    }

    for (const Corner& corner : corners) {
      const std::string corner_text =
          scale_supplies(text, corner.vdd_scale);
      device::ParsedDeck deck;
      spice::Solution sol;
      try {
        deck = device::parse_deck(
            corner_text, device::Process::c180().at_temperature(corner.t_k));
        spice::Engine engine(*deck.circuit);
        sol = engine.solve_op();
      } catch (const std::exception&) {
        continue;  // deck does not solve at this corner (bad_* decks)
      }
      ++solved_corners;

      // Newton converges on delta-x, not residual: allow a small pad on
      // top of the engine tolerances before declaring unsoundness.
      const double v_pad = 1e-3;
      for (int n = 0; n < deck.circuit->node_count(); ++n) {
        const std::string& name = deck.circuit->node_name(n);
        const auto it = by_name.find(name);
        ASSERT_NE(it, by_name.end()) << name;
        EXPECT_TRUE(it->second.pad(v_pad).contains(sol.v(n)))
            << name << " = " << sol.v(n) << " outside [" << it->second.lo
            << ", " << it->second.hi << "] at T=" << corner.t_k
            << " vdd_scale=" << corner.vdd_scale;
      }
      for (const auto& dev : deck.circuit->devices()) {
        const auto it = branch_by_name.find(dev->name());
        if (it == branch_by_name.end()) continue;
        const auto* vsrc =
            dynamic_cast<const spice::VoltageSource*>(dev.get());
        if (vsrc == nullptr) continue;
        const double i = sol.branch_current(vsrc->branch());
        const double i_pad = 1e-12 + 1e-2 * std::fabs(i);
        EXPECT_TRUE(it->second.pad(i_pad).contains(i))
            << dev->name() << " branch current " << i << " outside ["
            << it->second.lo << ", " << it->second.hi << "] at T="
            << corner.t_k << " vdd_scale=" << corner.vdd_scale;
      }
    }
  }
  // The good decks must actually exercise the oracle.
  EXPECT_GE(solved_corners, 8 * 4) << "too few solvable corners";
}

TEST(OpRegionOracle, NominalCornerIsInsideTheNominalAnalysis) {
  // Tighter variant: nominal analysis (point box) vs the nominal solve.
  for (const fs::path& path : committed_decks()) {
    if (path.filename().string().rfind("good_", 0) != 0) continue;
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    device::ParsedDeck deck = device::parse_deck(text);
    const CircuitView view(*deck.circuit);
    const AnalysisIR ir = AnalysisIR::build(view);
    const OpRegionResult result =
        analyze_op_region(view, ir, OpRegionOptions{});

    spice::Solution sol;
    try {
      spice::Engine engine(*deck.circuit);
      sol = engine.solve_op();
    } catch (const std::exception&) {
      continue;
    }
    for (int s = 1; s < view.slot_count(); ++s) {
      const spice::NodeId n = view.node_of_slot(s);
      EXPECT_TRUE(result.node_v[s].pad(1e-3).contains(sol.v(n)))
          << view.node_label(n) << " = " << sol.v(n) << " outside ["
          << result.node_v[s].lo << ", " << result.node_v[s].hi << "]";
    }
  }
}

}  // namespace
}  // namespace sscl::lint
