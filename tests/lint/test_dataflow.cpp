// Lattice-convergence tests for the monotone worklist engine: cyclic
// graphs must reach the least fixpoint within the step budget, a
// non-monotone transfer must surface as converged == false (never a
// hang), and the FIFO index-order seeding makes results deterministic.

#include <gtest/gtest.h>

#include <vector>

#include "lint/dataflow.hpp"
#include "lint/lattice.hpp"

namespace sscl::lint {
namespace {

TEST(Dataflow, TaintRingConverges) {
  // 0 -> 1 -> 2 -> 0 ring, root at node 0: everything becomes tainted.
  const std::vector<std::vector<int>> succs{{1}, {2}, {0}};
  std::vector<bool> taint(3, TaintLattice::bottom());
  const auto stats = solve_dataflow(succs, taint, [&](int v) -> bool {
    if (v == 0) return true;
    return taint[v == 1 ? 0 : 1];
  });
  EXPECT_TRUE(stats.converged);
  EXPECT_TRUE(taint[0]);
  EXPECT_TRUE(taint[1]);
  EXPECT_TRUE(taint[2]);
}

TEST(Dataflow, DomainUnionOnCycleReachesFixpoint) {
  // Two seeds on a 4-cycle; every node must accumulate both bits.
  const std::vector<std::vector<int>> succs{{1}, {2}, {3}, {0}};
  std::vector<std::uint64_t> mask(4, DomainSetLattice::bottom());
  const std::vector<std::uint64_t> seed{
      DomainSetLattice::singleton(0), 0, DomainSetLattice::singleton(1), 0};
  const auto stats = solve_dataflow(succs, mask, [&](int v) -> std::uint64_t {
    const int pred = (v + 3) % 4;
    return DomainSetLattice::join(seed[v], mask[pred]);
  });
  EXPECT_TRUE(stats.converged);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(DomainSetLattice::count(mask[v]), 2) << "node " << v;
  }
}

TEST(Dataflow, ConstLatticeCycleStaysBottom) {
  // A latch-style feedback cycle with no constant seed must converge
  // with every node still at Bottom (no information), not oscillate.
  const std::vector<std::vector<int>> succs{{1}, {0}};
  std::vector<ConstValue> value(2, ConstLattice::bottom());
  const auto stats = solve_dataflow(succs, value, [&](int v) -> ConstValue {
    return value[1 - v];  // copy the other node
  });
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(value[0], ConstValue::kBottom);
  EXPECT_EQ(value[1], ConstValue::kBottom);
}

TEST(Dataflow, NonMonotoneTransferHitsBudgetNotHang) {
  // A transfer that flips a boolean forever is non-monotone; the
  // engine must stop at the budget and report non-convergence.
  const std::vector<std::vector<int>> succs{{0}};
  std::vector<bool> value{false};
  const auto stats = solve_dataflow(
      succs, value, [&](int) -> bool { return !value[0]; }, 10);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.steps, 10);
}

TEST(Dataflow, StepCountDeterministic) {
  // Same inputs, same FIFO order, same step count — twice.
  const std::vector<std::vector<int>> succs{{1, 2}, {3}, {3}, {}};
  auto run = [&] {
    std::vector<bool> taint(4, false);
    return solve_dataflow(succs, taint, [&](int v) -> bool {
      if (v == 0) return true;
      if (v == 3) return taint[1] || taint[2];
      return taint[0];
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(Lattice, JoinsAreLeastUpperBounds) {
  EXPECT_EQ(ConstLattice::join(ConstValue::kZero, ConstValue::kZero),
            ConstValue::kZero);
  EXPECT_EQ(ConstLattice::join(ConstValue::kZero, ConstValue::kOne),
            ConstValue::kTop);
  EXPECT_EQ(ConstLattice::join(ConstValue::kBottom, ConstValue::kOne),
            ConstValue::kOne);
  EXPECT_EQ(ConstLattice::negate(ConstValue::kZero), ConstValue::kOne);
  EXPECT_EQ(ConstLattice::negate(ConstValue::kTop), ConstValue::kTop);

  EXPECT_EQ(PhaseLattice::join(PhaseColor::kPhaseA, PhaseColor::kPhaseB),
            PhaseColor::kTop);
  EXPECT_EQ(PhaseLattice::join(PhaseColor::kBottom, PhaseColor::kPhaseA),
            PhaseColor::kPhaseA);
  EXPECT_TRUE(PhaseLattice::includes(PhaseColor::kTop, true));
  EXPECT_TRUE(PhaseLattice::includes(PhaseColor::kTop, false));
  EXPECT_FALSE(PhaseLattice::includes(PhaseColor::kBottom, true));
}

}  // namespace
}  // namespace sscl::lint
