// SARIF 2.1.0 export, flat JSON export and the baseline workflow. The
// SARIF structure is validated strictly against the parts of the 2.1
// schema the exporter uses (required properties, enumerated levels,
// fingerprint format) with the platform's own strict JSON parser, so a
// malformed export fails here before any external viewer sees it.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "lint/rule.hpp"
#include "lint/sarif.hpp"
#include "util/json.hpp"

namespace sscl::lint {
namespace {

std::vector<ArtifactReport> sample_artifacts() {
  Report a;
  a.warning("domain-crossing", "M2", "gate crosses \"domains\"\nbadly",
            "insert a level shifter");
  a.error("floating-node", "n1", "no DC path to ground");
  Report b;
  b.info("bias-provenance", "-", "one-knob property holds");
  return {{"decks/bad.sp", a}, {"decks/good.sp", b}};
}

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

TEST(Sarif, ValidatesAgainst21Schema) {
  const auto passes = make_default_passes();
  SarifOptions options;
  options.passes = &passes;
  const std::string text = to_sarif(sample_artifacts(), options);

  const util::JsonValue doc = util::parse_json(text);  // strict RFC 8259
  ASSERT_TRUE(doc.is_object());

  // sarif-2.1.0 required root properties.
  const util::JsonValue* version = doc.find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->as_string(), "2.1.0");
  const util::JsonValue* schema = doc.find("$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_NE(schema->as_string().find("sarif-2.1.0"), std::string::npos);

  const util::JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->items().size(), 1u);
  const util::JsonValue& run = runs->items()[0];

  // run.tool.driver: required name, rules as reportingDescriptors.
  const util::JsonValue* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(driver->find("name"), nullptr);
  EXPECT_EQ(driver->find("name")->as_string(), "sscl-lint");
  const util::JsonValue* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->items().size(), passes.size());
  for (const util::JsonValue& rule : rules->items()) {
    ASSERT_NE(rule.find("id"), nullptr);
    const util::JsonValue* desc = rule.find("shortDescription");
    ASSERT_NE(desc, nullptr);
    EXPECT_FALSE(desc->find("text")->as_string().empty());
  }

  // results: required ruleId/level/message, our fingerprints.
  const util::JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), 3u);
  for (const util::JsonValue& result : results->items()) {
    ASSERT_NE(result.find("ruleId"), nullptr);
    const std::string level = result.find("level")->as_string();
    EXPECT_TRUE(level == "note" || level == "warning" || level == "error")
        << level;
    EXPECT_FALSE(result.find("message")->find("text")->as_string().empty());
    const util::JsonValue* locations = result.find("locations");
    ASSERT_TRUE(locations->is_array());
    ASSERT_EQ(locations->items().size(), 1u);
    const util::JsonValue* logical =
        locations->items()[0].find("logicalLocations");
    ASSERT_NE(logical, nullptr);
    EXPECT_FALSE(logical->items().empty());
    const util::JsonValue* fps = result.find("partialFingerprints");
    ASSERT_NE(fps, nullptr);
    EXPECT_TRUE(is_hex16(fps->find("ssclLint/v1")->as_string()));
  }

  // Severity map: warning -> warning, error -> error, info -> note.
  EXPECT_EQ(results->items()[0].find("level")->as_string(), "warning");
  EXPECT_EQ(results->items()[1].find("level")->as_string(), "error");
  EXPECT_EQ(results->items()[2].find("level")->as_string(), "note");

  // Escaping survives the round trip (quotes and newline in message).
  EXPECT_EQ(results->items()[0].find("message")->find("text")->as_string(),
            "gate crosses \"domains\"\nbadly");
}

TEST(Sarif, FlatJsonParsesWithFingerprints) {
  const std::string text = to_json(sample_artifacts());
  const util::JsonValue doc = util::parse_json(text);
  const util::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->items().size(), 3u);
  for (const util::JsonValue& f : findings->items()) {
    EXPECT_TRUE(is_hex16(f.find("fingerprint")->as_string()));
    EXPECT_FALSE(f.find("artifact")->as_string().empty());
  }
}

TEST(Sarif, FingerprintsAreStableAndFieldSeparated) {
  Diagnostic d;
  d.rule = "domain-crossing";
  d.location = "M2";
  d.message = "msg";
  const std::string fp = fingerprint(d, "deck.sp");
  EXPECT_TRUE(is_hex16(fp));
  EXPECT_EQ(fp, fingerprint(d, "deck.sp"));  // deterministic
  EXPECT_NE(fp, fingerprint(d, "other.sp"));  // artifact matters

  // Concatenation must not collide: ("ab","c") vs ("a","bc").
  Diagnostic x;
  x.rule = "ab";
  x.message = "m";
  Diagnostic y;
  y.rule = "a";
  y.message = "m";
  EXPECT_NE(fingerprint(x, "c"), fingerprint(y, "bc"));

  // Severity and fix hints are NOT part of the identity: re-ranking a
  // finding or improving its hint must not invalidate baselines.
  Diagnostic z = d;
  z.severity = Severity::kError;
  z.fix = "do something";
  EXPECT_EQ(fp, fingerprint(z, "deck.sp"));
}

TEST(Baseline, RoundTripAndGating) {
  const std::vector<ArtifactReport> artifacts = sample_artifacts();
  const std::string text = Baseline::write(artifacts);
  const Baseline base = Baseline::parse(text);
  EXPECT_EQ(base.size(), 3u);

  // Everything accepted: nothing fresh.
  EXPECT_TRUE(base.fresh(artifacts).empty());

  // A new finding in one artifact is the only thing that gates.
  std::vector<ArtifactReport> grown = artifacts;
  grown[0].report.warning("const-net", "g7", "output is constant 1");
  const std::vector<ArtifactReport> fresh = base.fresh(grown);
  ASSERT_EQ(fresh.size(), 1u);
  ASSERT_EQ(fresh[0].report.diagnostics().size(), 1u);
  EXPECT_EQ(fresh[0].report.diagnostics()[0].rule, "const-net");
}

TEST(Baseline, ParserIgnoresCommentsAndJunk) {
  const Baseline base = Baseline::parse(
      "# comment\n"
      "\n"
      "0123456789abcdef  # context text\n"
      "   fedcba9876543210\n"
      "not a fingerprint\n");
  EXPECT_EQ(base.size(), 2u);
  EXPECT_TRUE(base.contains("0123456789abcdef"));
  EXPECT_TRUE(base.contains("fedcba9876543210"));
  EXPECT_FALSE(base.contains("ffffffffffffffff"));
}

}  // namespace
}  // namespace sscl::lint
