#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/check.hpp"
#include "lint/diagnostic.hpp"
#include "lint/rule.hpp"

namespace sscl::lint {
namespace {

TEST(LintReport, CountsAndSeverities) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.clean());
  r.info("rule-a", "n1", "informational");
  r.warning("rule-b", "n2", "suspicious");
  r.error("rule-c", "n3", "broken");
  EXPECT_EQ(r.count(Severity::kInfo), 1);
  EXPECT_EQ(r.count(Severity::kWarning), 1);
  EXPECT_EQ(r.error_count(), 1);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.has("rule-b"));
  EXPECT_FALSE(r.has("rule-z"));
}

TEST(LintReport, MergeConcatenates) {
  Report a, b;
  a.error("rule-a", "x", "one");
  b.warning("rule-b", "y", "two");
  a.merge(b);
  EXPECT_EQ(static_cast<int>(a.diagnostics().size()), 2);
  EXPECT_TRUE(a.has("rule-b"));
}

TEST(LintReport, TextListsEveryDiagnostic) {
  Report r;
  r.error("floating-node", "mid", "no DC path");
  const std::string text = r.text();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("floating-node"), std::string::npos);
  EXPECT_NE(text.find("mid"), std::string::npos);
  EXPECT_TRUE(Report().text().empty());
}

TEST(LintReport, CsvQuotesSpecialCharacters) {
  Report r;
  r.warning("rule-a", "n,1", "says \"boom\", twice");
  const std::string csv = r.csv();
  EXPECT_EQ(csv.find("severity,rule,location,message"), 0u);
  EXPECT_NE(csv.find("\"n,1\""), std::string::npos);
  EXPECT_NE(csv.find("\"says \"\"boom\"\", twice\""), std::string::npos);
}

TEST(LintReport, LintErrorCarriesTheReport) {
  Report r;
  r.error("vsource-loop", "V2", "loop");
  try {
    throw LintError(r);
  } catch (const LintError& e) {
    EXPECT_EQ(e.report().error_count(), 1);
    EXPECT_NE(std::string(e.what()).find("vsource-loop"), std::string::npos);
  }
}

TEST(LintRegistry, RulesHaveUniqueIdsAndDescriptions) {
  const auto rules = make_default_rules();
  EXPECT_GE(static_cast<int>(rules.size()), 10);
  std::vector<std::string> ids;
  for (const auto& rule : rules) {
    EXPECT_NE(std::string(rule->id()), "");
    EXPECT_NE(std::string(rule->description()), "");
    ids.push_back(rule->id());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(LintLadder, MonotoneTapsPass) {
  EXPECT_TRUE(check_ladder_taps({0.1, 0.2, 0.3, 0.4}, 0.0, 0.5).clean());
}

TEST(LintLadder, NonMonotoneTapsFail) {
  const Report r = check_ladder_taps({0.1, 0.3, 0.2}, 0.0, 0.5);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.has("ladder-taps"));
}

TEST(LintLadder, OutOfRangeTapsFail) {
  EXPECT_FALSE(check_ladder_taps({0.1, 0.6}, 0.0, 0.5).clean());
  // Inverted span disables the range check.
  EXPECT_TRUE(check_ladder_taps({0.1, 0.6}, 1.0, 0.0).clean());
}

}  // namespace
}  // namespace sscl::lint
