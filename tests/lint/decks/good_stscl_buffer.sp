* STSCL buffer cell (paper Fig. 2): NMOS differential pair over a
* mirrored high-VT tail, bulk-drain-shorted PMOS loads acting as the
* paper's high-value resistors. The load gate bias Vbp is sized so the
* cell swings ~200 mV at the 1 nA tail current, clearing the 4*n*UT
* minimum with margin; the op-region pass certifies weak inversion,
* swing and VDD,min for this deck at the nominal corner.
Vdd vdd 0 1.0
Vip inp 0 1.0
Vin inn 0 0.8
* One-knob bias: IB programs the whole cell through the HVT mirror.
Ib vdd vbn 1n
Mb vbn vbn 0 0 nmos_hvt W=2u L=1u
Mt tail vbn 0 0 nmos_hvt W=2u L=1u
* Differential pair.
M1 outp inp tail 0 nmos W=2u L=0.5u
M2 outn inn tail 0 nmos W=2u L=0.5u
* Loads: bulk tied to drain (Fig. 7(b)); Vbp sets ~200 mV swing at 1 nA.
Vbp vbp 0 0.77
Ml1 outp vbp vdd outp pmos W=0.3u L=1.2u
Ml2 outn vbp vdd outn pmos W=0.3u L=1.2u
.op
.end
