* two supply domains with a sanctioned level shifter at the boundary
Vdd vdd 0 0.5
Vddh vddh 0 1.0
Vbias inb 0 0.3
Rl vdd lo 1meg
M1 lo inb 0 0 nmos_hvt W=2u L=1u
Rh vddh hi 1meg
MLS1 hi lo 0 0 nmos_hvt W=2u L=1u
Rh2 vddh out 1meg
M2 out hi 0 0 nmos_hvt W=2u L=1u
.op
.end
