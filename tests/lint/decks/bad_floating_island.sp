* resistive island with no DC path to ground
V1 vdd 0 1.0
R1 vdd 0 1meg
Ra a b 1k
Rb b c 1k
.op
.end
