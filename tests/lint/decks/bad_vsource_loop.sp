* two voltage sources fighting over the same node pair
V1 a 0 1.0
V2 a 0 2.0
R1 a 0 1k
.op
.end
