* pair tail biased by a lone resistor: legal locally (unbiased-tail is
* satisfied) but outside the one-knob IB loop - no bias-current root
* reaches the tail, which bias-provenance flags.
Vdd vdd 0 1.0
Vip inp 0 0.55
Vin inn 0 0.45
Rl1 vdd outp 10meg
Rl2 vdd outn 10meg
M1 outp inp tail 0 nmos_hvt W=2u L=1u
M2 outn inn tail 0 nmos_hvt W=2u L=1u
Rt tail 0 5meg
.op
.end
