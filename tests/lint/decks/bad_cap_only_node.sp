* node held only by capacitors: singular DC matrix
V1 vdd 0 1.0
R1 vdd 0 1meg
C1 vdd hold 1p
C2 hold 0 1p
.op
.end
