* flash-ADC front end: reference ladder + two preamps, one IB knob
Vdd vdd 0 1.0
Vin vin 0 0.5
Ib vdd vbn 200p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
R1 vdd r1 1meg
R2 r1 r2 1meg
R3 r2 0 1meg
Ra1 vdd a1p 10meg
Ra2 vdd a1n 10meg
M1 a1p vin ta1 0 nmos_hvt W=2u L=1u
M2 a1n r1 ta1 0 nmos_hvt W=2u L=1u
MT1 ta1 vbn 0 0 nmos_hvt W=2u L=1u
Rb1 vdd a2p 10meg
Rb2 vdd a2n 10meg
M3 a2p vin ta2 0 nmos_hvt W=2u L=1u
M4 a2n r2 ta2 0 nmos_hvt W=2u L=1u
MT2 ta2 vbn 0 0 nmos_hvt W=2u L=1u
.op
.end
