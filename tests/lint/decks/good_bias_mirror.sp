* one-knob bias distribution: IB programs the pair tail through a mirror
Vdd vdd 0 1.0
Ib vdd vbn 100p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
Vip inp 0 0.55
Vin inn 0 0.45
Rl1 vdd outp 10meg
Rl2 vdd outn 10meg
M1 outp inp tail 0 nmos_hvt W=2u L=1u
M2 outn inn tail 0 nmos_hvt W=2u L=1u
MT tail vbn 0 0 nmos_hvt W=4u L=1u
.op
.end
