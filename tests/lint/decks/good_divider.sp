* clean resistive divider
V1 vdd 0 1.0
R1 vdd mid 1k
R2 mid 0 1k
.op
.end
