* STSCL-style source-coupled pair with a proper subthreshold tail bias
Vdd vdd 0 1.0
Vip inp 0 0.55
Vin inn 0 0.45
* Loads sized so the swing Iss*RL = 200mV clears the 4*n*UT minimum.
Rl1 vdd outp 2g
Rl2 vdd outn 2g
M1 outp inp tail 0 nmos_hvt W=2u L=1u
M2 outn inn tail 0 nmos_hvt W=2u L=1u
Iss tail 0 100p
.op
.end
