* a low-domain signal drives a high-domain gate with no level shifter
Vdd vdd 0 0.5
Vddh vddh 0 1.0
Vbias inb 0 0.3
Rl vdd lo 1meg
M1 lo inb 0 0 nmos_hvt W=2u L=1u
Rh vddh out 1meg
M2 out lo 0 0 nmos_hvt W=2u L=1u
.op
.end
