* two-rank STSCL counter slice: one IB programs both latch tails
Vdd vdd 0 1.0
Ib vdd vbn 100p
MB vbn vbn 0 0 nmos_hvt W=2u L=1u
Vca clka 0 0.55
Vcb clkb 0 0.45
Rl1 vdd q1p 10meg
Rl2 vdd q1n 10meg
M1 q1p clka t1 0 nmos_hvt W=2u L=1u
M2 q1n clkb t1 0 nmos_hvt W=2u L=1u
MT1 t1 vbn 0 0 nmos_hvt W=2u L=1u
Rl3 vdd q2p 10meg
Rl4 vdd q2n 10meg
M3 q2p q1p t2 0 nmos_hvt W=2u L=1u
M4 q2n q1n t2 0 nmos_hvt W=2u L=1u
MT2 t2 vbn 0 0 nmos_hvt W=2u L=1u
.op
.end
