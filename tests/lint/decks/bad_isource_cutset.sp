* current source with no DC return path (blocked by the capacitor)
V1 vdd 0 1.0
R1 vdd 0 1meg
I1 0 n 1n
C1 n 0 1p
.op
.end
