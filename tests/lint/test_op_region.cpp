// Tests for the op-region interval abstract interpreter and its lint
// pass: certification of the committed STSCL decks (the paper's buffer
// cell must certify weak inversion, swing and VDD,min at the nominal
// corner), the three-way certified/violated/unproven verdicts, the
// supply-rail pair exclusion in the IR, pass-fact plumbing into the
// migrated weak-inversion rule, and byte-identical SARIF at any job
// count with the op-region pass enabled.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "device/deck_parser.hpp"
#include "lint/check.hpp"
#include "lint/circuit_view.hpp"
#include "lint/ir.hpp"
#include "lint/op_region.hpp"
#include "lint/rule.hpp"
#include "lint/sarif.hpp"
#include "spice/engine.hpp"

namespace sscl::lint {
namespace {

std::string read_deck_file(const std::string& name) {
  const std::string path = std::string(SSCL_LINT_DECK_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

Report lint_deck(const std::string& text, const Options& options = {}) {
  const device::ParsedDeck deck = device::parse_deck(text);
  return check_circuit(*deck.circuit, options);
}

std::vector<const Diagnostic*> diags_of(const Report& r,
                                        const std::string& rule) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

bool has_certified(const Report& r, const std::string& rule,
                   const std::string& where) {
  for (const Diagnostic* d : diags_of(r, rule)) {
    if (d->location == where && d->severity == Severity::kInfo &&
        d->message.rfind("certified:", 0) == 0) {
      return true;
    }
  }
  return false;
}

// ---- acceptance: the paper's buffer cell certifies at nominal --------

TEST(OpRegionPass, BufferDeckCertifiesWeakInversionSwingVddminAtNominal) {
  const Report r = lint_deck(read_deck_file("good_stscl_buffer.sp"));
  EXPECT_EQ(r.error_count(), 0);
  EXPECT_EQ(r.count(Severity::kWarning), 0) << r.text();

  EXPECT_TRUE(has_certified(r, "op-region-weak-inversion", "M1")) << r.text();
  EXPECT_TRUE(has_certified(r, "op-region-weak-inversion", "M2"));
  EXPECT_TRUE(has_certified(r, "op-region-weak-inversion", "Mt"));
  EXPECT_TRUE(has_certified(r, "op-region-swing", "tail"));
  EXPECT_TRUE(has_certified(r, "op-region-vddmin", "tail"));
  // The bulk-drain-shorted PMOS loads certify via the resistor-like
  // weak-inversion criterion, not the classic triode test.
  EXPECT_TRUE(has_certified(r, "op-region-triode", "tail"));
}

TEST(OpRegionPass, PairDeckCertifiesOverPvtBox) {
  Options options;
  options.t_lo_k = 273.15;        // 0 C
  options.t_hi_k = 273.15 + 85.0; // 85 C
  options.vdd_tol = 0.10;
  const Report r =
      lint_deck(read_deck_file("good_stscl_pair.sp"), options);
  EXPECT_EQ(r.error_count(), 0);
  EXPECT_EQ(r.count(Severity::kWarning), 0) << r.text();
  EXPECT_TRUE(has_certified(r, "op-region-weak-inversion", "M1"));
  EXPECT_TRUE(has_certified(r, "op-region-swing", "tail"));
  EXPECT_TRUE(has_certified(r, "op-region-vddmin", "tail"));
}

// ---- three-way verdicts ----------------------------------------------

TEST(OpRegionPass, UndersizedSwingIsViolatedNotUnproven) {
  // 100 pA into 1 Mohm = 0.1 mV of swing: provably below 4 n UT, so
  // the verdict must be "violated" (the intervals refute the property),
  // not "unproven" (too wide to decide).
  const Report r = lint_deck(R"(
Vdd vdd 0 1.0
Vip inp 0 0.55
Vin inn 0 0.45
Rl1 vdd outp 1meg
Rl2 vdd outn 1meg
M1 outp inp tail 0 nmos W=2u L=0.5u
M2 outn inn tail 0 nmos W=2u L=0.5u
Iss tail 0 100p
.op
.end
)");
  bool violated = false;
  for (const Diagnostic* d : diags_of(r, "op-region-swing")) {
    violated = violated || (d->severity == Severity::kWarning &&
                            d->message.rfind("violated:", 0) == 0);
  }
  EXPECT_TRUE(violated) << r.text();
}

TEST(OpRegionPass, StrongInversionPairIsFlagged) {
  // 100 uA through a 2u/0.5u pair is far above IC = 10: weak inversion
  // must come back violated.
  const Report r = lint_deck(R"(
Vdd vdd 0 1.0
Vip inp 0 0.95
Vin inn 0 0.90
Rl1 vdd outp 1k
Rl2 vdd outn 1k
M1 outp inp tail 0 nmos W=2u L=0.5u
M2 outn inn tail 0 nmos W=2u L=0.5u
Iss tail 0 100u
.op
.end
)");
  bool flagged = false;
  for (const Diagnostic* d : diags_of(r, "op-region-weak-inversion")) {
    flagged = flagged || d->severity == Severity::kWarning;
  }
  EXPECT_TRUE(flagged) << r.text();
}

// ---- analyzer-level properties ---------------------------------------

TEST(OpRegionAnalysis, BufferIntervalsContainTheDcSolution) {
  const std::string text = read_deck_file("good_stscl_buffer.sp");
  device::ParsedDeck deck = device::parse_deck(text);
  const CircuitView view(*deck.circuit);
  const AnalysisIR ir = AnalysisIR::build(view);
  const OpRegionResult result = analyze_op_region(view, ir, OpRegionOptions{});
  EXPECT_FALSE(result.contradiction);

  spice::Engine engine(*deck.circuit);
  const spice::Solution sol = engine.solve_op();
  for (int s = 1; s < view.slot_count(); ++s) {
    const spice::NodeId n = view.node_of_slot(s);
    EXPECT_TRUE(result.node_v[s].pad(1e-3).contains(sol.v(n)))
        << view.node_label(n) << " = " << sol.v(n) << " outside ["
        << result.node_v[s].lo << ", " << result.node_v[s].hi << "]";
  }
  // The analysis is tight on this deck: every node is bounded.
  for (int s = 1; s < view.slot_count(); ++s) {
    EXPECT_TRUE(result.node_v[s].is_bounded())
        << view.node_label(view.node_of_slot(s));
  }
}

TEST(OpRegionAnalysis, WideningTheBoxKeepsNominalInside) {
  // Inclusion isotonicity end to end: the PVT-box result contains the
  // nominal-corner result wherever both are defined.
  const std::string text = read_deck_file("good_stscl_pair.sp");
  device::ParsedDeck deck = device::parse_deck(text);
  const CircuitView view(*deck.circuit);
  const AnalysisIR ir = AnalysisIR::build(view);
  const OpRegionResult nominal =
      analyze_op_region(view, ir, OpRegionOptions{});
  OpRegionOptions box;
  box.t_lo_k = 273.15;
  box.t_hi_k = 273.15 + 85.0;
  box.vdd_tol = 0.10;
  const OpRegionResult wide = analyze_op_region(view, ir, box);
  for (int s = 1; s < view.slot_count(); ++s) {
    EXPECT_TRUE(wide.node_v[s].pad(1e-9).contains(nominal.node_v[s]))
        << view.node_label(view.node_of_slot(s));
  }
}

TEST(AnalysisIr, SupplyRailCommonSourceGroupIsNotAPair) {
  // The two PMOS loads of the buffer share their source at vdd; they
  // must not be reported as a source-coupled pair (there is no tail).
  const std::string text = read_deck_file("good_stscl_buffer.sp");
  device::ParsedDeck deck = device::parse_deck(text);
  const CircuitView view(*deck.circuit);
  const AnalysisIR ir = AnalysisIR::build(view);
  ASSERT_EQ(ir.pairs.size(), 1u);
  EXPECT_TRUE(ir.pairs[0].is_nmos);
  EXPECT_EQ(ir.pairs[0].devices.size(), 2u);
}

// ---- pass-fact plumbing ----------------------------------------------

TEST(OpRegionPass, WeakInversionRuleConsumesIntervalFacts) {
  // With op-region enabled, tail-bias weak inversion reports through
  // the interval path; with it disabled, the local estimate fallback
  // still fires. Both must flag a strongly-inverted pair.
  const std::string deck = R"(
Vdd vdd 0 1.0
Vip inp 0 0.95
Vin inn 0 0.90
Rl1 vdd outp 1k
Rl2 vdd outn 1k
M1 outp inp tail 0 nmos W=2u L=0.5u
M2 outn inn tail 0 nmos W=2u L=0.5u
Iss tail 0 100u
.op
.end
)";
  const Report with_facts = lint_deck(deck);
  Options no_op_region;
  no_op_region.disabled.push_back("op-region");
  const Report without_facts = lint_deck(deck, no_op_region);
  EXPECT_FALSE(diags_of(with_facts, "weak-inversion-bias").empty());
  EXPECT_FALSE(diags_of(without_facts, "weak-inversion-bias").empty());
  // The interval path reports certified bounds, the fallback an
  // estimate: both flag, neither crashes, and the interval message
  // carries the bound notation.
  bool interval_msg = false;
  for (const Diagnostic* d : diags_of(with_facts, "weak-inversion-bias")) {
    interval_msg = interval_msg || d->message.find('[') != std::string::npos;
  }
  EXPECT_TRUE(interval_msg);
}

// ---- determinism ------------------------------------------------------

TEST(OpRegionPass, SarifIsByteIdenticalAcrossJobCounts) {
  const std::string text = read_deck_file("good_stscl_buffer.sp");
  const device::ParsedDeck deck = device::parse_deck(text);

  const auto run = [&](int jobs) {
    Options options;
    options.jobs = jobs;
    options.t_lo_k = 273.15;
    options.t_hi_k = 273.15 + 85.0;
    options.vdd_tol = 0.10;
    std::vector<ArtifactReport> artifacts;
    artifacts.push_back(
        {"buffer.sp", check_circuit(*deck.circuit, options)});
    return to_sarif(artifacts, SarifOptions{});
  };
  const std::string one = run(1);
  const std::string eight = run(8);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("op-region"), std::string::npos);
}

}  // namespace
}  // namespace sscl::lint
