// One test per digital DRC rule. Netlist::add() refuses most broken
// structures, so violations are seeded through the raw add_gate() /
// signal() import hooks — the path a future netlist reader would take.

#include <gtest/gtest.h>

#include <string>

#include "digital/eventsim.hpp"
#include "digital/netlist.hpp"
#include "lint/check.hpp"

namespace sscl::lint {
namespace {

using digital::Gate;
using digital::GateKind;
using digital::kNoSignal;
using digital::Netlist;
using digital::Ref;
using digital::SignalId;

stscl::SclModel timing() {
  stscl::SclModel m;
  m.vsw = 0.2;
  m.cl = 10e-15;
  return m;
}

const Diagnostic* find_diag(const Report& r, const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

TEST(LintNetlist, CleanPipelinePasses) {
  Netlist nl;
  nl.clock();
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId x = nl.and2(a, b, "u_and");
  const SignalId l1 = nl.latch(x, true, "u_l1");
  nl.latch(l1, false, "u_l2");
  const Report r = check_netlist(nl);
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(r.count(Severity::kWarning), 0) << r.text();
}

TEST(LintNetlist, UnconnectedInput) {
  Netlist nl;
  const SignalId a = nl.input("a");
  Gate g;
  g.kind = GateKind::kAnd2;
  g.in[0] = Ref(a);  // in[1] left at kNoSignal
  g.out = nl.signal("y");
  g.name = "u_bad";
  nl.add_gate(g);
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "unconnected-input");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location, "u_bad");
  EXPECT_NE(d->message.find("input 1"), std::string::npos);
}

TEST(LintNetlist, UndrivenSignal) {
  Netlist nl;
  const SignalId w = nl.signal("w");  // no driver, not an input
  Gate g;
  g.kind = GateKind::kBuf;
  g.in[0] = Ref(w);
  g.out = nl.signal("y");
  g.name = "u_buf";
  nl.add_gate(g);
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "undriven-signal");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "w");
  EXPECT_NE(d->message.find("u_buf"), std::string::npos);
}

TEST(LintNetlist, MultiDrivenSignal) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.signal("y");
  for (int i = 0; i < 2; ++i) {
    Gate g;
    g.kind = GateKind::kBuf;
    g.in[0] = Ref(a);
    g.out = y;
    g.name = "u_drv" + std::to_string(i);
    nl.add_gate(g);
  }
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "multi-driven");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "y");
}

TEST(LintNetlist, GateWithoutOutput) {
  Netlist nl;
  const SignalId a = nl.input("a");
  Gate g;
  g.kind = GateKind::kBuf;
  g.in[0] = Ref(a);
  g.out = kNoSignal;
  g.name = "u_noout";
  nl.add_gate(g);
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "multi-driven");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->location, "u_noout");
}

TEST(LintNetlist, CombinationalLoop) {
  Netlist nl;
  const SignalId a = nl.signal("a");
  const SignalId b = nl.signal("b");
  Gate g1;
  g1.kind = GateKind::kBuf;
  g1.in[0] = Ref(b);
  g1.out = a;
  g1.name = "u_fwd";
  nl.add_gate(g1);
  Gate g2;
  g2.kind = GateKind::kBuf;
  g2.in[0] = Ref(a);
  g2.out = b;
  g2.name = "u_back";
  nl.add_gate(g2);
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "comb-loop");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_NE(d->message.find("u_fwd"), std::string::npos);
  EXPECT_NE(d->message.find("u_back"), std::string::npos);
}

TEST(LintNetlist, LatchThroughLoopIsAllowed) {
  // The same loop with a latch in it is a legitimate state element.
  Netlist nl;
  nl.clock();
  const SignalId a = nl.signal("a");
  const SignalId b = nl.signal("b");
  Gate g1;
  g1.kind = GateKind::kLatch;
  g1.in[0] = Ref(b);
  g1.out = a;
  g1.name = "u_latch";
  nl.add_gate(g1);
  Gate g2;
  g2.kind = GateKind::kBuf;
  g2.in[0] = Ref(a);
  g2.out = b;
  g2.name = "u_buf";
  nl.add_gate(g2);
  EXPECT_EQ(find_diag(check_netlist(nl), "comb-loop"), nullptr);
}

TEST(LintNetlist, SamePhaseLatchToLatch) {
  Netlist nl;
  nl.clock();
  const SignalId a = nl.input("a");
  const SignalId l1 = nl.latch(a, true, "u_l1");
  nl.latch(l1, true, "u_l2");  // same phase: races through
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "latch-phase");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location, "u_l2");
  EXPECT_NE(d->message.find("u_l1"), std::string::npos);
}

TEST(LintNetlist, DeadOutputSummary) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "u_dead");
  const Report r = check_netlist(nl);
  const Diagnostic* d = find_diag(r, "dead-output");
  ASSERT_NE(d, nullptr) << r.text();
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_NE(d->message.find("u_dead"), std::string::npos);
}

TEST(LintNetlist, EventSimRefusesBrokenNetlist) {
  Netlist nl;
  const SignalId a = nl.input("a");
  Gate g;
  g.kind = GateKind::kAnd2;
  g.in[0] = Ref(a);  // in[1] unconnected: would index fanout_[-1]
  g.out = nl.signal("y");
  g.name = "u_bad";
  nl.add_gate(g);
  EXPECT_THROW(digital::EventSim sim(nl, timing(), 1e-9), LintError);
}

TEST(LintNetlist, EventSimLintOptOut) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.buf(a, "u_buf");
  digital::EventSim sim(nl, timing(), 1e-9, /*lint=*/false);
  sim.set_input(a, true);
  sim.settle();
  EXPECT_TRUE(sim.value(y));
}

}  // namespace
}  // namespace sscl::lint
