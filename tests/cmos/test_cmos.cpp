#include "cmos/cmos_logic.hpp"

#include <gtest/gtest.h>

#include "stscl/scl_params.hpp"

namespace sscl::cmos {
namespace {

const device::Process kProc = device::Process::c180();

CmosGateModel model() { return CmosGateModel(kProc, CmosGateParams{}); }

TEST(CmosModel, OnCurrentGrowsWithVdd) {
  const CmosGateModel m = model();
  EXPECT_GT(m.i_on(0.6), 10 * m.i_on(0.3));
  EXPECT_GT(m.i_on(1.2), m.i_on(0.6));
}

TEST(CmosModel, LeakageIndependentKnob) {
  // Subthreshold leakage at vgs = 0: orders below the on-current.
  const CmosGateModel m = model();
  EXPECT_LT(m.i_leak(1.0), 1e-3 * m.i_on(1.0));
  EXPECT_GT(m.i_leak(1.0), 0.0);
}

TEST(CmosModel, DelayFallsWithVdd) {
  const CmosGateModel m = model();
  EXPECT_GT(m.delay(0.3), 10 * m.delay(0.6));
  EXPECT_THROW(m.delay(0.0), std::invalid_argument);
}

TEST(CmosModel, DvfsFindsMinimumSupply) {
  const CmosGateModel m = model();
  const double f = 1e5;
  const double vdd = m.min_vdd_for_frequency(f, 5);
  EXPECT_GE(m.fmax(vdd * 1.02, 5), f);
  EXPECT_LT(m.fmax(vdd * 0.9, 5), f);
  EXPECT_THROW(m.min_vdd_for_frequency(1e12, 5), std::runtime_error);
}

TEST(CmosModel, PowerComposition) {
  const CmosGateModel m = model();
  const double f = 1e5, vdd = 0.6;
  EXPECT_NEAR(m.power(f, vdd, 0.1, 100),
              m.dynamic_power(f, vdd, 0.1, 100) + m.leakage_power(vdd, 100),
              1e-15);
  // Dynamic power linear in activity.
  EXPECT_NEAR(m.dynamic_power(f, vdd, 0.2, 100),
              2 * m.dynamic_power(f, vdd, 0.1, 100), 1e-15);
}

TEST(Comparison, StsclWinsAtUltraLowRates) {
  // The paper's regime: at sub-kS/s operating rates the CMOS leakage
  // floor (at a practical fixed supply) dominates and STSCL's
  // scaled-down static current wins.
  const CmosGateModel m = model();
  const double nl = 2.0, gates = 179;
  stscl::SclModel scl;
  scl.vsw = 0.2;
  scl.cl = 12e-15;
  auto scl_power = [&](double f) {
    return gates * scl.iss_for_delay(1.0 / (2.0 * nl * f)) * 1.0;
  };
  const double f_lo = 800.0;
  EXPECT_LT(scl_power(f_lo), m.power(f_lo, 1.0, 0.05, gates));
  // At MHz clocks a DVFS-capable CMOS implementation wins (the paper
  // never claims STSCL replaces CMOS generally; it needs the separate
  // precisely controlled supply the paper mentions).
  const double f_hi = 5e6;
  EXPECT_GT(scl_power(f_hi), m.power_dvfs(f_hi, 2.0, 1.0, gates));
}

TEST(Comparison, CrossoverActivityBehaviour) {
  const CmosGateModel m = model();
  // At low frequency STSCL wins across all activities (fixed-VDD CMOS).
  EXPECT_GT(stscl_wins_below_activity(m, 500.0, 2, 179, 0.2, 12e-15, 1.0),
            0.9);
  // At high frequency both powers scale with f and the crossover
  // settles at the iso-VDD dynamic-vs-static ratio (STSCL still wins
  // for low-activity logic, the paper's "low activity rate systems").
  const double hi = stscl_wins_below_activity(m, 5e6, 2, 179, 0.2, 12e-15, 1.0);
  EXPECT_GT(hi, 0.2);
  EXPECT_LT(hi, 0.9);
}

TEST(Comparison, CrossoverFrequencyInUltraLowPowerBand) {
  // The leakage-domination crossover lands in the kS/s decade for the
  // encoder-sized block -- exactly where the paper's ADC operates.
  const CmosGateModel m = model();
  const double f_cross =
      stscl_crossover_frequency(m, 0.1, 2, 179, 0.2, 12e-15, 1.0, 1.0);
  EXPECT_GT(f_cross, 100.0);
  EXPECT_LT(f_cross, 1e6);
}

TEST(Comparison, IdealDvfsIsTheStrongestBaseline) {
  // With ideal per-frequency supply scaling CMOS beats STSCL even at
  // low rates -- the paper's caveat that such scaling needs "a separate
  // precisely controlled supply voltage" is what makes STSCL attractive.
  const CmosGateModel m = model();
  EXPECT_LT(stscl_wins_below_activity(m, 800.0, 2, 179, 0.2, 12e-15, 1.0,
                                      /*cmos_vdd=*/-1.0),
            0.05);
}

TEST(Comparison, StsclPowerIsActivityIndependent) {
  // Fig. 3's message: STSCL decouples power from switching statistics.
  stscl::SclModel scl;
  scl.vsw = 0.2;
  scl.cl = 12e-15;
  const double iss = scl.iss_for_delay(1e-6);
  const double p = 179 * iss * 1.0;
  // No alpha anywhere in the computation: trivially constant, asserted
  // for documentation value.
  EXPECT_GT(p, 0.0);
}

}  // namespace
}  // namespace sscl::cmos
