#include "analog/folding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/dcsweep.hpp"
#include "spice/engine.hpp"
#include "util/numeric.hpp"

namespace sscl::analog {
namespace {

TEST(Folding, FolderOutputAlternatesAndCrossesAtGrid) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  const double lsb = p.lsb();
  // Folder 0 crossings at positions 1, 33, 65, ... check sign structure.
  for (int k = 0; k < p.fold_factor; ++k) {
    const double c = p.v_bottom + (1.0 + 32.0 * k) * lsb;
    const double below = fe.folder_output(0, c - 0.4 * lsb);
    const double above = fe.folder_output(0, c + 0.4 * lsb);
    EXPECT_LT(below * above, 0.0) << "crossing " << k;
    // Orientation alternates.
    if (k % 2 == 0) {
      EXPECT_LT(below, 0.0);
    } else {
      EXPECT_GT(below, 0.0);
    }
  }
}

TEST(Folding, FolderAmplitudeBounded) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  double peak = 0;
  for (double x = p.v_bottom; x <= p.v_top; x += p.lsb() / 4) {
    peak = std::max(peak, std::fabs(fe.folder_output(1, x)));
  }
  EXPECT_LE(peak, p.i_unit * 1.0001);
  EXPECT_GT(peak, 0.2 * p.i_unit);
}

TEST(Folding, FineSignalCrossingsNearIdeal) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  // Interpolated crossings bow by well under an LSB (paper's [15]
  // distortion mechanism, kept small at interpolation ratio 8).
  for (int i = 0; i < 32; i += 5) {
    const double ideal = fe.ideal_crossing(i);
    double lo = ideal - 2 * p.lsb(), hi = ideal + 2 * p.lsb();
    double flo = fe.fine_signal(i, lo);
    ASSERT_LT(flo * fe.fine_signal(i, hi), 0.0) << i;
    for (int it = 0; it < 50; ++it) {
      const double mid = 0.5 * (lo + hi);
      if ((fe.fine_signal(i, mid) > 0) == (flo > 0)) {
        lo = mid;
        flo = fe.fine_signal(i, lo);
      } else {
        hi = mid;
      }
    }
    EXPECT_NEAR(0.5 * (lo + hi), ideal, 0.2 * p.lsb()) << "line " << i;
  }
}

TEST(Folding, PatternIsAlwaysSingleTransition) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  for (int code = 0; code < 256; code += 3) {
    const double x = p.v_bottom + (code + 0.5) * p.lsb();
    int transitions = 0;
    bool prev = fe.fine_bit(0, x);
    for (int i = 1; i < 32; ++i) {
      const bool cur = fe.fine_bit(i, x);
      if (cur != prev) ++transitions;
      prev = cur;
    }
    EXPECT_LE(transitions, 1) << "code " << code;
  }
}

TEST(Folding, CoarseCountStaircase) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  int prev = 0;
  for (double x = p.v_bottom; x <= p.v_top; x += p.lsb()) {
    const int cc = fe.coarse_count(x);
    EXPECT_GE(cc, prev);
    EXPECT_LE(cc - prev, 1);
    prev = cc;
  }
  EXPECT_EQ(prev, 8);
}

TEST(Folding, MismatchSamplingShapes) {
  FoldingParams p;
  util::Rng rng(3);
  const FoldingMismatch mm =
      FoldingMismatch::sample(p, FoldingMismatch::Sigmas{}, rng);
  EXPECT_EQ(mm.folder_offsets.size(), 4u);
  EXPECT_EQ(mm.folder_offsets[0].size(), 8u);
  EXPECT_EQ(mm.fine_comp_offsets.size(), 32u);
  EXPECT_EQ(mm.coarse_comp_offsets.size(), 8u);
  // Zero mismatch really is zero.
  const FoldingMismatch z = FoldingMismatch::zero(p);
  EXPECT_EQ(z.fine_comp_offsets[5], 0.0);
}

TEST(Folding, MismatchShiftsCrossings) {
  FoldingParams p;
  FoldingMismatch mm = FoldingMismatch::zero(p);
  mm.folder_offsets[0][0] = 2e-3;  // shift folder 0's first crossing
  FoldingFrontEnd fe(p, mm);
  FoldingFrontEnd ideal(p);
  const double x_probe = ideal.ideal_crossing(0) + 1e-3;
  // Ideal: already crossed (positive); shifted: not yet.
  EXPECT_GT(ideal.fine_signal(0, x_probe), 0.0);
  EXPECT_LT(fe.fine_signal(0, x_probe), 0.0);
}

TEST(Folding, AnalogCurrentScalesWithUnit) {
  FoldingParams p;
  FoldingFrontEnd fe(p);
  p.i_unit = 2e-9;
  FoldingFrontEnd fe2(p);
  EXPECT_NEAR(fe2.analog_current() / fe.analog_current(), 2.0, 1e-9);
}

TEST(Folding, RejectsBadParams) {
  FoldingParams p;
  p.n_folders = 1;
  EXPECT_THROW(FoldingFrontEnd fe(p), std::invalid_argument);
}

TEST(FolderCircuit, TransistorLevelFoldingShape) {
  // DC sweep of the 3-crossing circuit folder: the differential output
  // current must change sign at each reference (Fig. 5(a) behaviour).
  spice::Circuit c;
  FoldingParams p;
  const FolderCircuit fc =
      build_folder_circuit(c, device::Process::c180(), p, 3);
  spice::Engine engine(c);

  // The demo builder places crossings at 0.52, 0.60 and 0.68 V.
  std::vector<double> xs;
  for (int k = 0; k < 3; ++k) {
    const double cross = 0.6 + (k - 1.0) * 0.08;
    xs.push_back(cross - 0.02);
    xs.push_back(cross + 0.02);
  }
  std::vector<double> diffs;
  for (double x : xs) {
    fc.vin->set_spec(spice::SourceSpec::dc(x));
    const spice::Solution op = engine.solve_op();
    // Differential output current = difference of the sense currents.
    diffs.push_back(op.branch_current(fc.sense_p->branch()) -
                    op.branch_current(fc.sense_n->branch()));
  }
  // The differential output changes sign at every crossing, with
  // alternating orientation (folding). With the sense convention used
  // here (current absorbed by the virtual-ground sources), the signal
  // is positive below the first crossing.
  EXPECT_GT(diffs[0], 0);
  EXPECT_LT(diffs[1], 0);
  EXPECT_LT(diffs[2], 0);
  EXPECT_GT(diffs[3], 0);
  EXPECT_GT(diffs[4], 0);
  EXPECT_LT(diffs[5], 0);
}

}  // namespace
}  // namespace sscl::analog
