#include "analog/tunable_resistor.hpp"

#include <gtest/gtest.h>

#include "analog/ladder.hpp"
#include "spice/engine.hpp"
#include "util/rng.hpp"

namespace sscl::analog {
namespace {

const device::Process kProc = device::Process::c180();

TEST(TunableResistor, ResistanceDecreasesWithIres) {
  // Fig. 7(c): IRES controls the resistivity over decades.
  const double r_small_bias = measure_resistance(kProc, 1e-12, 0.8);
  const double r_mid = measure_resistance(kProc, 1e-10, 0.8);
  const double r_big_bias = measure_resistance(kProc, 1e-8, 0.8);
  EXPECT_GT(r_small_bias, 5.0 * r_mid);
  EXPECT_GT(r_mid, 5.0 * r_big_bias);
}

TEST(TunableResistor, UltraHighValuesReachable) {
  // The paper needs > 10 Gohm to build sub-uW ladders.
  EXPECT_GT(measure_resistance(kProc, 1e-12, 0.8), 1e10);
}

// Tuning range across bias: R roughly inversely proportional to IRES
// (exponential VSG control makes it slightly super-linear).
class ResistorSweep : public ::testing::TestWithParam<double> {};

TEST_P(ResistorSweep, ResistanceScalesInversely) {
  const double ires = GetParam();
  const double r = measure_resistance(kProc, ires, 0.8);
  const double r10 = measure_resistance(kProc, 10 * ires, 0.8);
  EXPECT_GT(r / r10, 3.0);
  EXPECT_LT(r / r10, 60.0);
}

INSTANTIATE_TEST_SUITE_P(IresDecades, ResistorSweep,
                         ::testing::Values(1e-12, 1e-11, 1e-10, 1e-9));

TEST(TunableResistor, LinearOverSmallDrops) {
  // Bulk-drain shorting linearises the I-V: R at 5 mV and at 20 mV drop
  // should agree within ~30%.
  const double r5 = measure_resistance(kProc, 1e-10, 0.8, 5e-3);
  const double r20 = measure_resistance(kProc, 1e-10, 0.8, 20e-3);
  EXPECT_NEAR(r5 / r20, 1.0, 0.35);
}

TEST(LadderModel, IdealTapsUniform) {
  LadderParams p;
  p.taps = 7;
  LadderModel ladder(p);
  // 8 resistors between 0.18 and 0.82: taps every 80 mV.
  for (int t = 0; t < 7; ++t) {
    EXPECT_NEAR(ladder.tap_voltage(t), 0.18 + 0.08 * (t + 1), 1e-12);
  }
  EXPECT_THROW(ladder.tap_voltage(7), std::out_of_range);
  EXPECT_THROW(ladder.tap_voltage(-1), std::out_of_range);
}

TEST(LadderModel, DefaultIsTheFineReferenceLadder) {
  LadderParams p;
  EXPECT_EQ(p.taps, 255);  // the paper's 256-resistor example
  LadderModel ladder(p);
  // 2.5 mV per tap.
  EXPECT_NEAR(ladder.tap_voltage(1) - ladder.tap_voltage(0), 2.5e-3, 1e-5);
}

TEST(LadderModel, MismatchPerturbsTapsModestly) {
  LadderParams p;
  p.taps = 7;
  p.sigma_r_rel = 0.02;
  util::Rng rng(42);
  LadderModel ladder(p, rng);
  LadderModel ideal(p);
  for (int t = 0; t < 7; ++t) {
    EXPECT_NEAR(ladder.tap_voltage(t), ideal.tap_voltage(t), 0.01);
    EXPECT_NE(ladder.tap_voltage(t), ideal.tap_voltage(t));
  }
}

TEST(LadderModel, SharedBiasSavesPower) {
  // Fig. 7(d): sharing MLS/IRES across a group cuts the bias overhead.
  LadderParams p;
  p.taps = 255;  // the paper's 256-resistor example
  p.share_group = 8;
  LadderModel ladder(p);
  EXPECT_LT(ladder.power(), 0.55 * ladder.power_unshared());
  // Far below the conventional >1 uW floor at 1 nA string current.
  EXPECT_LT(ladder.power(), 1e-7);
}

TEST(LadderCircuit, CircuitTapsMatchModel) {
  // A fine-ladder slice: 16 resistors over 40 mV (2.5 mV per tap, like
  // the paper's 256-tap reference ladder), shared bias per Fig. 7(d).
  spice::Circuit c;
  LadderParams p;
  p.taps = 15;
  p.v_top = 0.82;
  p.v_bottom = 0.78;
  p.i_ladder = 1e-9;
  p.share_group = 4;
  p.ires_ratio = 0.05;
  const LadderInstance inst = build_ladder(c, kProc, p);
  spice::Engine engine(c);
  const spice::Solution op = engine.solve_op();
  LadderModel model(p);
  // Taps monotone and near the uniform division (bias loading and the
  // in-group VSG cascade allow a fraction of a tap of error).
  double prev = p.v_bottom;
  for (int t = 0; t < p.taps; ++t) {
    const double v = op.v(inst.tap_nodes[t]);
    EXPECT_GT(v, prev) << "tap " << t;
    EXPECT_NEAR(v, model.tap_voltage(t), 2.0e-3) << "tap " << t;
    prev = v;
  }
}

}  // namespace
}  // namespace sscl::analog
