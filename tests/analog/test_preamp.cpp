#include "analog/preamp.hpp"

#include <gtest/gtest.h>

namespace sscl::analog {
namespace {

const device::Process kProc = device::Process::c180();

TEST(Preamp, HasLowGainAsDesigned) {
  // "a low gain pre-amplifier stage" -- subthreshold double-diff stage
  // gain ~ Vsw / (n UT) spread over the double difference.
  PreampParams p;
  const PreampResponse r = measure_preamp_response(kProc, p);
  EXPECT_GT(r.dc_gain, 1.0);
  EXPECT_LT(r.dc_gain, 10.0);
}

TEST(Preamp, DecouplingRecoversBandwidth) {
  // Paper Fig. 6(d): inserting MC between load drain and bulk pushes the
  // DWell pole out and restores bandwidth.
  PreampParams plain;
  plain.decouple_bulk = false;
  const PreampResponse r_plain = measure_preamp_response(kProc, plain);

  PreampParams fixed = plain;
  fixed.decouple_bulk = true;
  fixed.r_decouple = 0;  // auto: 10x the load resistance
  const PreampResponse r_fixed = measure_preamp_response(kProc, fixed);

  EXPECT_GT(r_fixed.bandwidth_3db, 3.0 * r_plain.bandwidth_3db);
  // Gain unchanged by the fix.
  EXPECT_NEAR(r_fixed.dc_gain / r_plain.dc_gain, 1.0, 0.1);
}

TEST(Preamp, BandwidthScalesWithBias) {
  // The power-frequency scalability claim: BW tracks Iss.
  PreampParams p1;
  p1.iss = 1e-9;
  p1.r_decouple = 0;
  PreampParams p10 = p1;
  p10.iss = 1e-8;
  const double b1 = measure_preamp_response(kProc, p1).bandwidth_3db;
  const double b10 = measure_preamp_response(kProc, p10).bandwidth_3db;
  EXPECT_NEAR(b10 / b1, 10.0, 4.0);
}

TEST(Preamp, LargerDwellAreaSlowsUndecoupledAmp) {
  PreampParams small;
  small.decouple_bulk = false;
  small.dwell_area = 10e-12;
  PreampParams big = small;
  big.dwell_area = 80e-12;
  const double b_small = measure_preamp_response(kProc, small).bandwidth_3db;
  const double b_big = measure_preamp_response(kProc, big).bandwidth_3db;
  EXPECT_GT(b_small, 2.0 * b_big);
}

}  // namespace
}  // namespace sscl::analog
