#include "adc/fai_adc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "digital/encoder.hpp"
#include "digital/eventsim.hpp"
#include "digital/fmax.hpp"

namespace sscl::adc {
namespace {

TEST(SoftwareEncoder, MatchesReferenceOnCleanPatterns) {
  using digital::coarse_raw_count;
  using digital::fine_pattern;
  using digital::thermometer;
  for (int seg = 0; seg <= 7; ++seg) {
    for (int pos = 0; pos < 32; ++pos) {
      const auto cw = static_cast<std::uint32_t>(
          thermometer(coarse_raw_count(seg, pos), 8));
      const std::uint64_t fw = fine_pattern(seg, pos);
      EXPECT_EQ(software_encode(cw, fw), seg * 32 + pos)
          << seg << "," << pos;
    }
  }
}

TEST(SoftwareEncoder, MatchesGateLevelNetlistOnRandomPatterns) {
  // The strongest digital check: arbitrary (even invalid) patterns give
  // the same answer in software and in the event-driven netlist.
  digital::Netlist nl;
  digital::EncoderIo io = digital::build_fai_encoder(nl);
  stscl::SclModel timing;
  timing.vsw = 0.2;
  timing.cl = 12e-15;
  digital::EventSim sim(nl, timing, 1e-9);
  sim.set_input(io.clock, false);

  util::Rng rng(77);
  const double period = 30.0 * timing.delay(1e-9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto cw = static_cast<std::uint32_t>(rng.bounded(256));
    const std::uint64_t fw = rng.next_u64() & 0xFFFFFFFFULL;
    for (int i = 0; i < 8; ++i) sim.set_input(io.coarse_in[i], (cw >> i) & 1);
    for (int i = 0; i < 32; ++i) sim.set_input(io.fine_in[i], (fw >> i) & 1);
    for (int k = 0; k < 10; ++k) {
      sim.run_until(sim.time() + period / 2);
      sim.set_input(io.clock, true);
      sim.run_until(sim.time() + period / 2);
      sim.set_input(io.clock, false);
    }
    sim.settle();
    const digital::EncodedValue v = digital::read_outputs(sim, io);
    EXPECT_EQ(v.coarse * 32 + v.fine, software_encode(cw, fw))
        << "cw=" << cw << " fw=" << fw;
  }
}

TEST(FaiAdc, NominalTransferIsExact) {
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  FaiAdc adc(cfg);
  for (int code = 0; code < 256; ++code) {
    const double x = adc.v_bottom() + (code + 0.5) * adc.lsb();
    EXPECT_EQ(adc.convert_noiseless(x), code) << code;
  }
}

TEST(FaiAdc, NominalLinearitySubLsb) {
  FaiAdcConfig cfg;
  FaiAdc adc(cfg);
  const analysis::LinearityResult lin = adc.linearity();
  // Only the interpolation bow remains: well under an LSB.
  EXPECT_LT(lin.max_abs_inl, 0.4);
  EXPECT_LT(lin.max_abs_dnl, 0.3);
  EXPECT_EQ(lin.missing_codes, 0);
}

TEST(FaiAdc, MonteCarloLinearityInPaperBand) {
  // Paper Fig. 11: INL = 1.0 LSB, DNL = 0.4 LSB for the fabricated chip.
  FaiAdcConfig cfg;
  const MonteCarloLinearity mc = monte_carlo_linearity(cfg, 8);
  EXPECT_GT(mc.mean_inl, 0.15);
  EXPECT_LT(mc.mean_inl, 2.0);
  EXPECT_GT(mc.mean_dnl, 0.1);
  EXPECT_LT(mc.mean_dnl, 1.2);
  EXPECT_LT(mc.worst_dnl, 2.0);
}

TEST(FaiAdc, NominalEnobNearEightBits) {
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  FaiAdc adc(cfg);
  const analysis::DynamicMetrics m = adc.sine_enob();
  EXPECT_GT(m.enob, 7.3);
}

TEST(FaiAdc, EnobWithNoiseAndMismatchNearPaper) {
  // Paper: ENOB 6.5. Average a few Monte-Carlo instances, each on its
  // own forked mismatch stream.
  FaiAdcConfig cfg;
  const util::Rng base(11);
  double sum = 0;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    FaiAdc adc(cfg, base.fork(static_cast<std::uint64_t>(i)));
    sum += adc.sine_enob().enob;
  }
  const double mean_enob = sum / n;
  EXPECT_GT(mean_enob, 5.0);
  EXPECT_LT(mean_enob, 7.8);
}

TEST(FaiAdc, MonteCarloIsBitIdenticalAcrossJobCounts) {
  // The runner's determinism contract end-to-end: the MC ensemble gives
  // the same per-instance numbers at every thread count.
  FaiAdcConfig cfg;
  const MonteCarloLinearity serial = monte_carlo_linearity(cfg, 12, 2026, 1);
  const MonteCarloLinearity pooled = monte_carlo_linearity(cfg, 12, 2026, 8);
  ASSERT_EQ(serial.max_inl.size(), pooled.max_inl.size());
  for (std::size_t i = 0; i < serial.max_inl.size(); ++i) {
    EXPECT_EQ(serial.max_inl[i], pooled.max_inl[i]) << i;
    EXPECT_EQ(serial.max_dnl[i], pooled.max_dnl[i]) << i;
  }
  EXPECT_EQ(serial.mean_inl, pooled.mean_inl);
  EXPECT_EQ(serial.worst_dnl, pooled.worst_dnl);
}

TEST(FaiAdc, MonteCarloInstanceIsPureFunctionOfSeedAndIndex) {
  // Instance i must not depend on how many instances run before it:
  // growing the ensemble only appends, never reshuffles.
  FaiAdcConfig cfg;
  const MonteCarloLinearity small = monte_carlo_linearity(cfg, 4, 99, 1);
  const MonteCarloLinearity big = monte_carlo_linearity(cfg, 8, 99, 1);
  for (std::size_t i = 0; i < small.max_inl.size(); ++i) {
    EXPECT_EQ(small.max_inl[i], big.max_inl[i]) << i;
    EXPECT_EQ(small.max_dnl[i], big.max_dnl[i]) << i;
  }
  // And it matches a directly forked standalone instance.
  FaiAdcConfig quiet = cfg;
  quiet.input_noise_rms = 0.0;
  FaiAdc inst(quiet, util::Rng(99).fork(2));
  const analysis::LinearityResult lin = inst.linearity_histogram();
  EXPECT_EQ(lin.max_abs_inl, big.max_inl[2]);
  EXPECT_EQ(lin.max_abs_dnl, big.max_dnl[2]);
}

TEST(FaiAdc, MonteCarloEnobDeterministicAndInBand) {
  FaiAdcConfig cfg;
  const MonteCarloEnob serial = monte_carlo_enob(cfg, 4, 2026, 1, 512);
  const MonteCarloEnob pooled = monte_carlo_enob(cfg, 4, 2026, 4, 512);
  ASSERT_EQ(serial.enob.size(), 4u);
  for (std::size_t i = 0; i < serial.enob.size(); ++i) {
    EXPECT_EQ(serial.enob[i], pooled.enob[i]) << i;
  }
  EXPECT_GT(serial.mean_enob, 4.5);
  EXPECT_LT(serial.mean_enob, 8.0);
  EXPECT_LE(serial.worst_enob, serial.mean_enob);
}

TEST(FaiAdc, NoiseReducesEnob) {
  FaiAdcConfig clean;
  clean.input_noise_rms = 0.0;
  FaiAdcConfig noisy;
  noisy.input_noise_rms = 4e-3;
  FaiAdc a(clean), b(noisy);
  EXPECT_GT(a.sine_enob().enob, b.sine_enob().enob + 0.7);
}

TEST(FaiAdc, HistogramAndEdgeMethodsAgreeNominally) {
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  FaiAdc adc(cfg);
  const auto edges = adc.linearity();
  const auto hist = adc.linearity_histogram(64);
  EXPECT_NEAR(edges.max_abs_dnl, hist.max_abs_dnl, 0.25);
  EXPECT_NEAR(edges.max_abs_inl, hist.max_abs_inl, 0.4);
}

TEST(FaiAdc, PatternsFeedTheRealEncoder) {
  // End-to-end via the gate-level encoder at a mid-scale input.
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  FaiAdc adc(cfg);
  const double x = adc.v_bottom() + 100.5 * adc.lsb();
  EXPECT_EQ(software_encode(adc.coarse_pattern(x), adc.fine_pattern_bits(x)),
            100);
  EXPECT_EQ(adc.convert_noiseless(x), 100);
}

TEST(FaiAdc, MonotoneAwayFromSliverWindows) {
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  FaiAdc adc(cfg);
  int prev = -1;
  int nonmono = 0;
  for (int k = 0; k < 256 * 4; ++k) {
    const double x = adc.v_bottom() + (k + 0.5) * adc.lsb() / 4.0;
    const int c = adc.convert_noiseless(x);
    if (c < prev) ++nonmono;
    prev = c;
  }
  EXPECT_EQ(nonmono, 0);
}

}  // namespace
}  // namespace sscl::adc
