#include "adc/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::adc {
namespace {

TEST(ComparatorDynamics, TauScalesInverselyWithBias) {
  ComparatorDynamics d;
  EXPECT_NEAR(d.tau(1e-9) / d.tau(1e-8), 10.0, 1e-9);
  // Sanity: 5 fF at 1 nA with gm = I/(n UT) gives tau ~ 175 ns.
  EXPECT_NEAR(d.tau(1e-9), 5e-15 * 1.35 * 0.02586 / 1e-9, 5e-9);
}

TEST(ComparatorDynamics, WindowShrinksExponentiallyWithTime) {
  ComparatorDynamics d;
  const double tau = d.tau(1e-9);
  const double w1 = d.metastable_window(1e-9, 5 * tau);
  const double w2 = d.metastable_window(1e-9, 10 * tau);
  EXPECT_NEAR(w1 / w2, std::exp(5.0), std::exp(5.0) * 1e-6);
}

TEST(SampledFaiAdc, MatchesStaticConverterWhenSlow) {
  // With ample regeneration time the sampled converter equals ITS OWN
  // static core (same mismatch realisation) on every code.
  FaiAdcConfig cfg;
  cfg.input_noise_rms = 0.0;
  util::Rng rng(123);
  SampledFaiAdc sampled(cfg, rng);
  const FaiAdc& ref = sampled.adc();
  for (int code = 0; code < 256; code += 7) {
    const double x = ref.v_bottom() + (code + 0.5) * ref.lsb();
    EXPECT_EQ(sampled.convert(x, 100.0, 1e-9), ref.convert_noiseless(x))
        << code;
  }
}

TEST(SampledFaiAdc, EnobCollapsesBeyondTheCliff) {
  FaiAdcConfig cfg;
  util::Rng rng(5);
  SampledFaiAdc adc(cfg, rng);
  const double i_unit = 0.3e-9;
  const double e_slow = adc.sine_enob(1e3, i_unit, 1024).enob;
  const double e_fast = adc.sine_enob(2e6, i_unit, 1024).enob;
  EXPECT_GT(e_slow, e_fast + 1.5);
}

TEST(SampledFaiAdc, ScaledBiasHoldsEnob) {
  FaiAdcConfig cfg;
  util::Rng rng(5);
  SampledFaiAdc adc(cfg, rng);
  // Bias scaled with rate: same tau budget at both rates.
  const double e1 = adc.sine_enob(1e3, 0.3e-9, 1024).enob;
  util::Rng rng2(5);
  SampledFaiAdc adc2(cfg, rng2);
  const double e2 = adc2.sine_enob(1e5, 30e-9, 1024).enob;
  EXPECT_NEAR(e1, e2, 0.5);
}

TEST(SampledFaiAdc, MaxRateScalesWithBias) {
  FaiAdcConfig cfg;
  const double f1 = max_sampling_rate(cfg, 0.3e-9, 4.0);
  const double f10 = max_sampling_rate(cfg, 3e-9, 4.0);
  EXPECT_GT(f1, 1e3);
  EXPECT_NEAR(f10 / f1, 10.0, 4.0);
}

}  // namespace
}  // namespace sscl::adc
