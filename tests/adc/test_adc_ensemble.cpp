#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adc/ensemble.hpp"
#include "adc/fai_adc.hpp"
#include "analog/folding.hpp"
#include "analog/folding_ensemble.hpp"
#include "util/rng.hpp"

namespace sscl::adc {
namespace {

using analog::FoldingEnsemble;
using analog::FoldingFrontEnd;
using analog::FoldingMismatch;
using analog::FoldingParams;
using analog::FoldingSampleFrontEnd;

/// A vin sweep that covers every fold segment, the guard regions past
/// both range ends, and off-grid points between crossings.
std::vector<double> sweep(const FoldingParams& p, int points) {
  std::vector<double> v;
  v.reserve(points);
  const double lo = p.v_bottom - 2.0 * p.lsb();
  const double hi = p.v_top + 2.0 * p.lsb();
  for (int k = 0; k < points; ++k) {
    v.push_back(lo + (hi - lo) * (k + 0.37) / points);
  }
  return v;
}

/// Every public evaluation of the per-sample front end must be bitwise
/// equal to the legacy FoldingFrontEnd built with the same mismatch:
/// the table precomputation only hoists subexpressions the legacy code
/// computes with the same IEEE grouping.
TEST(AdcEnsemble, SampleFrontEndIsBitwiseEqualToLegacy) {
  const FoldingParams p;  // paper geometry: 4 folders x 8 folds x 8 interp
  const FoldingEnsemble shared(p);
  for (std::uint64_t inst = 0; inst < 4; ++inst) {
    const FoldingMismatch mm = FoldingMismatch::sample(
        p, FoldingMismatch::Sigmas{}, util::Rng(99).fork(inst));
    const FoldingFrontEnd legacy(p, mm);
    const FoldingSampleFrontEnd fast(shared, mm);

    std::vector<double> fo(static_cast<std::size_t>(p.n_folders));
    for (const double vin : sweep(p, 700)) {
      fast.fold(vin, fo.data());
      for (int j = 0; j < p.n_folders; ++j) {
        EXPECT_EQ(fast.folder_output(j, vin), legacy.folder_output(j, vin))
            << "inst " << inst << " folder " << j << " vin " << vin;
        EXPECT_EQ(fo[j], legacy.folder_output(j, vin));
      }
      for (int i = 0; i < p.fine_lines(); ++i) {
        EXPECT_EQ(fast.fine_signal_from(fo.data(), i), legacy.fine_signal(i, vin))
            << "inst " << inst << " line " << i << " vin " << vin;
        EXPECT_EQ(fast.fine_bit_from(fo.data(), i), legacy.fine_bit(i, vin));
      }
      EXPECT_EQ(fast.coarse_count(vin), legacy.coarse_count(vin))
          << "inst " << inst << " vin " << vin;
    }
  }
}

/// Zero mismatch must make the per-sample tables an exact no-op: the
/// guard crossings carry mm_off = 0.0 and the thresholds reduce to the
/// nominal bisection result.
TEST(AdcEnsemble, ZeroMismatchSampleEqualsNominalFrontEnd) {
  const FoldingParams p;
  const FoldingEnsemble shared(p);
  const FoldingSampleFrontEnd fast(shared, FoldingMismatch::zero(p));
  const FoldingFrontEnd nominal(p);
  for (const double vin : sweep(p, 300)) {
    for (int j = 0; j < p.n_folders; ++j) {
      EXPECT_EQ(fast.folder_output(j, vin), nominal.folder_output(j, vin));
    }
    EXPECT_EQ(fast.coarse_count(vin), nominal.coarse_count(vin));
  }
}

/// Full conversions: a Sample built from the same stream as a legacy
/// FaiAdc must produce identical codes — noiseless over a fine ramp,
/// and with input noise enabled (same fork(1) stream, same call order).
TEST(AdcEnsemble, ConversionsAreBitIdenticalToFaiAdc) {
  FaiAdcConfig config;
  const util::Rng stream = util::Rng(0xfeed).fork(5);
  const FaiAdcEnsemble shared(config);

  {
    FaiAdc legacy(config, stream);
    FaiAdcEnsemble::Sample fast = shared.sample(stream);
    const double lo = config.folding.v_bottom;
    const double hi = config.folding.v_top;
    for (int k = 0; k < 2000; ++k) {
      const double vin = lo + (hi - lo) * (k + 0.5) / 2000;
      ASSERT_EQ(fast.convert_noiseless(vin), legacy.convert_noiseless(vin))
          << "vin " << vin;
    }
  }

  ASSERT_GT(config.input_noise_rms, 0.0);
  FaiAdc legacy(config, stream);
  FaiAdcEnsemble::Sample fast = shared.sample(stream);
  const double mid = 0.5 * (config.folding.v_bottom + config.folding.v_top);
  for (int k = 0; k < 500; ++k) {
    ASSERT_EQ(fast.convert(mid), legacy.convert(mid)) << "draw " << k;
  }
}

/// The Monte-Carlo summaries must be invariant under both the engine
/// choice and the job count: same instance streams, same estimators,
/// bitwise-equal result vectors.
TEST(AdcEnsemble, MonteCarloLinearityInvariantUnderEngineAndJobs) {
  FaiAdcConfig config;
  const int instances = 6;
  const std::uint64_t seed = 2024;
  const auto ens = monte_carlo_linearity(config, instances, seed, 1,
                                         McEngine::kEnsemble);
  const auto leg = monte_carlo_linearity(config, instances, seed, 1,
                                         McEngine::kLegacy);
  const auto ens8 = monte_carlo_linearity(config, instances, seed, 8,
                                          McEngine::kEnsemble);
  ASSERT_EQ(ens.max_inl.size(), leg.max_inl.size());
  for (int i = 0; i < instances; ++i) {
    EXPECT_EQ(ens.max_inl[i], leg.max_inl[i]) << i;
    EXPECT_EQ(ens.max_dnl[i], leg.max_dnl[i]) << i;
    EXPECT_EQ(ens.max_inl[i], ens8.max_inl[i]) << i;
    EXPECT_EQ(ens.max_dnl[i], ens8.max_dnl[i]) << i;
  }
  EXPECT_EQ(ens.worst_inl, leg.worst_inl);
  EXPECT_EQ(ens.mean_dnl, leg.mean_dnl);
}

TEST(AdcEnsemble, MonteCarloEnobInvariantUnderEngineAndJobs) {
  FaiAdcConfig config;
  const int instances = 4;
  const std::uint64_t seed = 77;
  const std::size_t record = 1024;
  const auto ens =
      monte_carlo_enob(config, instances, seed, 1, record, McEngine::kEnsemble);
  const auto leg =
      monte_carlo_enob(config, instances, seed, 1, record, McEngine::kLegacy);
  const auto ens8 =
      monte_carlo_enob(config, instances, seed, 8, record, McEngine::kEnsemble);
  ASSERT_EQ(ens.enob.size(), leg.enob.size());
  for (int i = 0; i < instances; ++i) {
    EXPECT_EQ(ens.enob[i], leg.enob[i]) << i;
    EXPECT_EQ(ens.enob[i], ens8.enob[i]) << i;
  }
  EXPECT_EQ(ens.mean_enob, leg.mean_enob);
  EXPECT_EQ(ens.worst_enob, leg.worst_enob);
}

/// The default monte_carlo_* entry points (no engine argument) forward
/// to the ensemble engine; verify they still match the legacy oracle.
TEST(AdcEnsemble, DefaultEntryPointsUseEnsembleEngine) {
  FaiAdcConfig config;
  const auto fwd = monte_carlo_linearity(config, 3, 9, 2);
  const auto leg = monte_carlo_linearity(config, 3, 9, 2, McEngine::kLegacy);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fwd.max_inl[i], leg.max_inl[i]) << i;
    EXPECT_EQ(fwd.max_dnl[i], leg.max_dnl[i]) << i;
  }
}

}  // namespace
}  // namespace sscl::adc
