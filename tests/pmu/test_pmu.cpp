#include "pmu/pmu.hpp"

#include <gtest/gtest.h>

#include "pmu/pll.hpp"

namespace sscl::pmu {
namespace {

TEST(PowerManager, ReferencePointMatchesPaper) {
  // Paper Section III-C: 44 nW total at 800 S/s, digital ~2 nW.
  PowerManager pm{PmuConfig{}};
  const BiasPlan p = pm.plan_for_rate(800.0);
  EXPECT_NEAR(p.p_total, 44e-9, 5e-9);
  EXPECT_NEAR(p.p_digital, 2e-9, 0.5e-9);
}

TEST(PowerManager, PowerScalesLinearlyWithRate) {
  // The 100x rate span of the paper: 800 S/s -> 80 kS/s with power
  // 44 nW -> 4.4 uW (paper quotes ~4 uW).
  PowerManager pm{PmuConfig{}};
  const BiasPlan lo = pm.plan_for_rate(800.0);
  const BiasPlan hi = pm.plan_for_rate(80e3);
  EXPECT_NEAR(hi.p_total / lo.p_total, 100.0, 1e-6);
  EXPECT_NEAR(hi.p_total, 4.4e-6, 0.6e-6);
}

TEST(PowerManager, DigitalStaysSmallFraction) {
  PowerManager pm{PmuConfig{}};
  for (double fs : {800.0, 5e3, 80e3}) {
    const BiasPlan p = pm.plan_for_rate(fs);
    EXPECT_LT(p.p_digital / p.p_total, 0.1) << fs;
  }
}

TEST(PowerManager, DigitalMeetsTimingAcrossRange) {
  // The fixed-ratio scheme leaves the encoder faster than the sampling
  // rate at every operating point (the margin is rate-independent
  // because both scale with the same current).
  PmuConfig cfg;
  cfg.speed_margin = 1.5;
  PowerManager pm{cfg};
  for (double fs : {800.0, 8e3, 80e3}) {
    const BiasPlan p = pm.plan_for_rate(fs);
    EXPECT_TRUE(pm.digital_meets_timing(p)) << fs;
    EXPECT_NEAR(p.speed_margin, pm.plan_for_rate(800.0).speed_margin, 1e-6);
  }
}

TEST(PowerManager, InverseMapping) {
  PowerManager pm{PmuConfig{}};
  const BiasPlan p = pm.plan_for_rate(12345.0);
  EXPECT_NEAR(pm.rate_for_analog_current(p.i_analog), 12345.0, 1e-6);
}

TEST(PowerManager, RejectsBadInput) {
  PowerManager pm{PmuConfig{}};
  EXPECT_THROW(pm.plan_for_rate(0.0), std::invalid_argument);
  EXPECT_THROW(pm.rate_for_analog_current(-1.0), std::invalid_argument);
}

TEST(Pll, RingFrequencyLinearInBias) {
  BiasPll pll{PllConfig{}};
  EXPECT_NEAR(pll.ring_frequency(2e-9) / pll.ring_frequency(1e-9), 2.0, 1e-9);
}

TEST(Pll, BiasForFrequencyInverts) {
  BiasPll pll{PllConfig{}};
  const double i = pll.bias_for_frequency(123e3);
  EXPECT_NEAR(pll.ring_frequency(i), 123e3, 1.0);
}

TEST(Pll, LocksFromFarBelow) {
  BiasPll pll{PllConfig{}};
  const PllLockResult r = pll.lock(1e5, 1e-12);
  EXPECT_TRUE(r.locked);
  EXPECT_NEAR(r.f_osc, 1e5, 1e5 * 2e-3);
  EXPECT_LT(r.iterations, 60);
  // The trajectory is monotone towards the target (first-order loop).
  for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_GE(r.trajectory[i], r.trajectory[i - 1] * 0.999);
  }
}

TEST(Pll, LocksFromFarAbove) {
  BiasPll pll{PllConfig{}};
  const PllLockResult r = pll.lock(1e3, 1e-6);
  EXPECT_TRUE(r.locked);
  EXPECT_NEAR(r.f_osc, 1e3, 1e3 * 2e-3);
}

TEST(Pll, LockBiasMatchesAnalyticInverse) {
  BiasPll pll{PllConfig{}};
  const PllLockResult r = pll.lock(5e4);
  EXPECT_NEAR(r.i_bias, pll.bias_for_frequency(5e4),
              0.01 * pll.bias_for_frequency(5e4));
}

TEST(Pll, RejectsBadTargets) {
  BiasPll pll{PllConfig{}};
  EXPECT_THROW(pll.lock(-5.0), std::invalid_argument);
  EXPECT_THROW(pll.bias_for_frequency(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sscl::pmu
