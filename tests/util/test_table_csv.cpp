#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace sscl::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"Iss", "fmax"});
  t.row().add_unit(1e-9, "A").add_unit(1.5e6, "Hz");
  t.row().add_unit(10e-12, "A").add_unit(20e3, "Hz");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Iss"), std::string::npos);
  EXPECT_NE(s.find("1nA"), std::string::npos);
  EXPECT_NE(s.find("10pA"), std::string::npos);
  EXPECT_NE(s.find("1.5MHz"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, IntegerAndStringCells) {
  Table t({"name", "count"});
  t.row().add("encoder").add(196LL);
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("196"), std::string::npos);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "sscl_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.write_row({1.0, 2.0});
    csv.write_row({3.5, -4.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,-4.25");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = testing::TempDir() + "sscl_csv_test2.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.write_row({1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace sscl::util
