#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::util {
namespace {

TEST(Units, FormatBasic) {
  EXPECT_EQ(format_si(0.0), "0");
  EXPECT_EQ(format_si(1.0), "1");
  EXPECT_EQ(format_si(4.7e-9), "4.7n");
  EXPECT_EQ(format_si(1e-12), "1p");
  EXPECT_EQ(format_si(2.2e3), "2.2k");
  EXPECT_EQ(format_si(3.3e6), "3.3M");
  EXPECT_EQ(format_si(-4.4e-6), "-4.4u");
}

TEST(Units, FormatWithUnit) {
  EXPECT_EQ(format_si(4.7e-9, "A", 4), "4.7nA");
  EXPECT_EQ(format_si(200e-3, "V", 4), "200mV");
}

TEST(Units, FormatEdgeCases) {
  EXPECT_EQ(format_si(std::nan("")), "nan");
  EXPECT_EQ(format_si(1.0 / 0.0), "inf");
  EXPECT_EQ(format_si(-1.0 / 0.0), "-inf");
  // Below the smallest prefix: falls back to atto scaling.
  EXPECT_EQ(format_si(1e-18), "1a");
}

TEST(Units, ParsePlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_si("42").value(), 42.0);
  EXPECT_DOUBLE_EQ(parse_si("-3.5").value(), -3.5);
  EXPECT_DOUBLE_EQ(parse_si("1e-9").value(), 1e-9);
  EXPECT_DOUBLE_EQ(parse_si("2.5E6").value(), 2.5e6);
}

TEST(Units, ParseSiSuffixes) {
  EXPECT_DOUBLE_EQ(parse_si("10p").value(), 10e-12);
  EXPECT_DOUBLE_EQ(parse_si("4.7n").value(), 4.7e-9);
  EXPECT_DOUBLE_EQ(parse_si("100u").value(), 100e-6);
  EXPECT_DOUBLE_EQ(parse_si("200m").value(), 0.2);
  EXPECT_DOUBLE_EQ(parse_si("2k").value(), 2000.0);
  EXPECT_DOUBLE_EQ(parse_si("3meg").value(), 3e6);
  EXPECT_DOUBLE_EQ(parse_si("1g").value(), 1e9);
  EXPECT_DOUBLE_EQ(parse_si("5f").value(), 5e-15);
}

TEST(Units, ParseSuffixWithUnit) {
  EXPECT_DOUBLE_EQ(parse_si("10pF").value(), 10e-12);
  EXPECT_DOUBLE_EQ(parse_si("4.7nA").value(), 4.7e-9);
  EXPECT_DOUBLE_EQ(parse_si("2kHz").value(), 2000.0);
  EXPECT_DOUBLE_EQ(parse_si("1V").value(), 1.0);
}

TEST(Units, ParseCaseInsensitive) {
  EXPECT_DOUBLE_EQ(parse_si("3MEG").value(), 3e6);
  EXPECT_DOUBLE_EQ(parse_si("10P").value(), 10e-12);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_si("").has_value());
  EXPECT_FALSE(parse_si("abc").has_value());
  EXPECT_FALSE(parse_si("1.2.3x!").has_value());
  EXPECT_FALSE(parse_si("3n9").has_value());
}

TEST(Units, RoundTrip) {
  for (double v : {1e-15, 3.3e-12, 4.7e-9, 1e-6, 2.2e-3, 1.0, 47e3, 1.8e6}) {
    const auto parsed = parse_si(format_si(v, 9));
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_NEAR(parsed.value(), v, 1e-9 * v);
  }
}

}  // namespace
}  // namespace sscl::util
