#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sscl::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BoundedStaysInBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(1234);
  Rng child = parent.fork();
  // Child stream should not replay the parent stream.
  Rng parent2(1234);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamForkIsPureFunctionOfSeedAndId) {
  // fork(i) must not depend on parent draws or sibling creation order.
  Rng fresh(2026);
  Rng drained(2026);
  for (int i = 0; i < 1000; ++i) drained.next_u64();
  Rng sibling_first(2026);
  (void)sibling_first.fork(7);

  Rng a = fresh.fork(3);
  Rng b = drained.fork(3);
  Rng c = sibling_first.fork(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_EQ(va, c.next_u64());
  }
}

TEST(Rng, StreamForkDoesNotConsumeParentState) {
  Rng a(555), b(555);
  (void)a.fork(0);
  (void)a.fork(1);
  (void)a.fork(99999);
  // a's own stream is untouched by the const forks.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamForkStreamsAreDistinct) {
  // Adjacent (and distant) stream ids give unrelated sequences.
  Rng base(42);
  for (std::uint64_t i : {0ULL, 1ULL, 2ULL, 1000000ULL}) {
    for (std::uint64_t j : {3ULL, 4ULL, 7777777ULL}) {
      Rng s1 = base.fork(i);
      Rng s2 = base.fork(j);
      int same = 0;
      for (int k = 0; k < 100; ++k) {
        if (s1.next_u64() == s2.next_u64()) ++same;
      }
      EXPECT_LT(same, 2) << "streams " << i << " and " << j;
    }
  }
}

TEST(Rng, StreamForkStatisticalIndependence) {
  // Pooled draws across many forked streams still look uniform: the
  // correlation between stream i's first draw and stream i+1's first
  // draw is near zero, and the pooled mean is near 1/2.
  Rng base(9001);
  const int n = 20000;
  std::vector<double> first(n);
  for (int i = 0; i < n; ++i) {
    Rng s = base.fork(static_cast<std::uint64_t>(i));
    first[static_cast<std::size_t>(i)] = s.uniform();
  }
  double mean = 0;
  for (double v : first) mean += v;
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.01);
  double cov = 0, var = 0;
  for (int i = 0; i + 1 < n; ++i) {
    cov += (first[i] - mean) * (first[i + 1] - mean);
    var += (first[i] - mean) * (first[i] - mean);
  }
  EXPECT_LT(std::fabs(cov / var), 0.03);  // lag-1 autocorrelation ~ 0
}

TEST(Rng, SeedAccessorReportsConstructionSeed) {
  Rng a(777);
  EXPECT_EQ(a.seed(), 777u);
  Rng child = a.fork(3);
  EXPECT_NE(child.seed(), a.seed());
  EXPECT_EQ(child.seed(), a.fork(3).seed());
}

TEST(Rng, NestedStreamForksStayDeterministic) {
  // Category sub-streams: fork(a).fork(b) is reproducible and distinct
  // from fork(b).fork(a).
  Rng base(31415);
  Rng x1 = base.fork(1).fork(2);
  Rng x2 = base.fork(1).fork(2);
  Rng y = base.fork(2).fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = x1.next_u64();
    EXPECT_EQ(v, x2.next_u64());
    if (v == y.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sscl::util
