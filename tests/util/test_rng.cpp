#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sscl::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BoundedStaysInBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(1234);
  Rng child = parent.fork();
  // Child stream should not replay the parent stream.
  Rng parent2(1234);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sscl::util
