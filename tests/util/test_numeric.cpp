#include "util/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::util {
namespace {

TEST(Numeric, LogspaceEndpointsAndMonotonicity) {
  const auto v = logspace(1e-12, 1e-6, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_NEAR(v.front(), 1e-12, 1e-18);
  EXPECT_NEAR(v.back(), 1e-6, 1e-12);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  // One point per decade for this span.
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-6);
}

TEST(Numeric, LogspaceRejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), std::invalid_argument);
}

TEST(Numeric, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_TRUE(linspace(1.0, 2.0, 0).empty());
  EXPECT_EQ(linspace(1.0, 2.0, 1).size(), 1u);
}

TEST(Numeric, Interp1) {
  const std::vector<double> xs = {0, 1, 2};
  const std::vector<double> ys = {0, 10, 40};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  // Clamping outside range.
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 3.0), 40.0);
}

TEST(Numeric, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Numeric, BisectFindsRoot) {
  const auto root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-9);
}

TEST(Numeric, BisectRequiresBracket) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(Numeric, BinarySearchBoundary) {
  // Predicate true below 3.7e-6 (log-scale search domain).
  const double edge = binary_search_boundary(
      [](double x) { return x < 3.7e-6; }, 1e-9, 1e-3, 1e-6);
  EXPECT_NEAR(edge, 3.7e-6, 3.7e-6 * 1e-4);
}

TEST(Numeric, BinarySearchBoundaryAllTrue) {
  EXPECT_DOUBLE_EQ(
      binary_search_boundary([](double) { return true; }, 1.0, 8.0), 8.0);
}

TEST(Numeric, Statistics) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs({-7, 3, 5}), 7.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

}  // namespace
}  // namespace sscl::util
