#include "run/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sscl::run {
namespace {

TEST(ResolveJobs, PositivePassesThrough) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ResolveJobs, ZeroAndNegativeUseHardware) {
  const int hw = resolve_jobs(0);
  EXPECT_GE(hw, 1);
  EXPECT_EQ(resolve_jobs(-3), hw);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, StressManyTasksManyThreads) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 2000LL * 1999 / 2);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(ids.size(), 2u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&ran] { ++ran; }));
    }
    for (auto& f : futures) f.get();
  }  // dtor joins here
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace sscl::run
