#include "run/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace sscl::run {
namespace {

TEST(Sweep, CollectsResultsInPointOrder) {
  std::vector<int> points;
  for (int i = 0; i < 50; ++i) points.push_back(i);
  for (int jobs : {1, 4}) {
    SweepOptions opts;
    opts.jobs = jobs;
    const auto res = sweep(
        points, [](const int& p, std::size_t) { return p * 2 + 1; }, opts);
    ASSERT_EQ(res.results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(res.results[i], points[static_cast<int>(i)] * 2 + 1);
    }
  }
}

TEST(Sweep, RecordsPerTaskStats) {
  std::vector<int> points(8, 0);
  const auto res = sweep(points, [](const int&, std::size_t) { return 0; });
  ASSERT_EQ(res.stats.size(), 8u);
  for (const TaskStats& st : res.stats) {
    EXPECT_GE(st.wall_seconds, 0.0);
    EXPECT_EQ(st.retries, 0);
  }
  EXPECT_GE(res.wall_seconds, 0.0);
  EXPECT_EQ(res.total_retries(), 0);
}

TEST(Sweep, RetriesFlakyTasksAndCountsThem) {
  // Task 3 fails on its first two attempts, then succeeds.
  std::atomic<int> attempts{0};
  std::vector<int> points{0, 1, 2, 3, 4};
  SweepOptions opts;
  opts.max_retries = 2;
  const auto res = sweep(
      points,
      [&](const int& p, std::size_t i) {
        if (i == 3 && attempts.fetch_add(1) < 2) {
          throw std::runtime_error("flaky");
        }
        return p + 10;
      },
      opts);
  EXPECT_EQ(res.results[3], 13);
  EXPECT_EQ(res.stats[3].retries, 2);
  EXPECT_EQ(res.total_retries(), 2);
}

TEST(Sweep, ThrowsWhenRetriesExhausted) {
  std::vector<int> points{0, 1, 2};
  SweepOptions opts;
  opts.max_retries = 1;
  EXPECT_THROW(sweep(
                   points,
                   [](const int&, std::size_t i) -> int {
                     if (i == 1) throw std::runtime_error("always fails");
                     return 0;
                   },
                   opts),
               std::runtime_error);
}

TEST(Sweep, ProgressReachesTotalMonotonically) {
  std::vector<int> points(20, 0);
  std::vector<std::size_t> seen;
  SweepOptions opts;
  opts.jobs = 4;
  opts.progress = [&](std::size_t d, std::size_t total) {
    EXPECT_EQ(total, 20u);
    seen.push_back(d);  // serialised under the sweep's mutex
  };
  sweep(points, [](const int&, std::size_t) { return 0; }, opts);
  ASSERT_EQ(seen.size(), 20u);
  EXPECT_EQ(seen.back(), 20u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(Sweep, FluentInterfaceMatchesFreeFunction) {
  std::vector<double> points{1.0, 2.0, 3.0};
  const auto res =
      Sweep<double, double>(points,
                            [](const double& p, std::size_t) { return p * p; })
          .jobs(2)
          .retries(1)
          .run();
  ASSERT_EQ(res.results.size(), 3u);
  EXPECT_DOUBLE_EQ(res.results[2], 9.0);
}

TEST(Sweep, ForkedRngTasksAreBitIdenticalAcrossJobCounts) {
  // The determinism contract: randomness forked from a root seed by
  // index gives the same results at every jobs value.
  std::vector<int> points(64, 0);
  auto task = [](const int&, std::size_t i) {
    util::Rng stream = util::Rng(97).fork(i);
    double acc = 0;
    for (int k = 0; k < 16; ++k) acc += stream.gaussian();
    return acc;
  };
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions pooled;
  pooled.jobs = 8;
  const auto a = sweep(points, task, serial);
  const auto b = sweep(points, task, pooled);
  EXPECT_EQ(a.results, b.results);  // bit-identical doubles
}

}  // namespace
}  // namespace sscl::run
