#include "run/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace sscl::run {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for(hits.size(), jobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelMap, ResultsLandAtTheirIndex) {
  for (int jobs : {1, 3, 8}) {
    const std::vector<int> out =
        parallel_map<int>(100, jobs, [](std::size_t i) {
          return static_cast<int>(i) * 3;
        });
    ASSERT_EQ(out.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
    }
  }
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  // Indices 10 and 90 both throw; the lowest index's exception must be
  // the one reported, independent of scheduling.
  for (int jobs : {1, 4}) {
    try {
      parallel_for(100, jobs, [](std::size_t i) {
        if (i == 10 || i == 90) {
          throw std::runtime_error("failed at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs " << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 10") << "jobs " << jobs;
    }
  }
}

TEST(ParallelFor, EveryIndexStillRunsWhenOneThrows) {
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  EXPECT_THROW(parallel_for(hits.size(), 4,
                            [&](std::size_t i) {
                              ++hits[i];
                              if (i == 5) throw std::runtime_error("x");
                            }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelMap, MatchesSerialReference) {
  auto fn = [](std::size_t i) {
    double acc = 0;
    for (int k = 0; k < 50; ++k) acc += static_cast<double>(i * 31 + k) * 0.5;
    return acc;
  };
  const std::vector<double> serial = parallel_map<double>(200, 1, fn);
  const std::vector<double> pooled = parallel_map<double>(200, 8, fn);
  EXPECT_EQ(serial, pooled);  // bit-identical, not just close
}

}  // namespace
}  // namespace sscl::run
