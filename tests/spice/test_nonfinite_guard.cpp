// The assembled-stamp non-finite guard: a device that writes NaN/inf
// into the MNA matrix or RHS must be named in the ConvergenceError
// instead of surfacing as an anonymous singular factorisation or a
// "did not converge" after gmin/source stepping grinds through a
// poisoned system.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "spice/circuit.hpp"
#include "spice/device.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"

namespace sscl::spice {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Two-terminal test device that stamps a chosen (possibly non-finite)
/// conductance and current between its nodes.
class PoisonDevice final : public Device {
 public:
  PoisonDevice(std::string name, NodeId a, NodeId b, double g, double i)
      : Device(std::move(name)), a_(a), b_(b), g_(g), i_(i) {}

  void load(LoadContext& ctx) override {
    ctx.stamp_conductance(a_, b_, g_);
    ctx.stamp_current_source(a_, b_, i_);
  }

 private:
  NodeId a_;
  NodeId b_;
  double g_;
  double i_;
};

Circuit healthy_core(NodeId* n1, NodeId* n2) {
  Circuit c;
  *n1 = c.node("n1");
  *n2 = c.node("n2");
  c.add<VoltageSource>("V1", *n1, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", *n1, *n2, 1e3);
  c.add<Resistor>("R2", *n2, kGround, 1e3);
  return c;
}

void expect_guard_names(Circuit& c, const std::string& device) {
  SolverOptions options;
  options.lint = false;  // the guard, not the pre-solve lint, is under test
  Engine engine(c, options);
  try {
    engine.solve_op();
    FAIL() << "expected ConvergenceError naming " << device;
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find(device), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
}

TEST(NonFiniteGuard, NamesDeviceThatStampsNanConductance) {
  NodeId n1, n2;
  Circuit c = healthy_core(&n1, &n2);
  c.add<PoisonDevice>("Xnan", n2, kGround, kNan, 0.0);
  expect_guard_names(c, "Xnan");
}

TEST(NonFiniteGuard, NamesDeviceThatStampsInfiniteRhs) {
  NodeId n1, n2;
  Circuit c = healthy_core(&n1, &n2);
  c.add<PoisonDevice>("Xinf", n2, kGround, 1e-3, kInf);
  expect_guard_names(c, "Xinf");
}

TEST(NonFiniteGuard, FiniteCustomDeviceStillSolves) {
  // Control: the same custom device with finite stamps solves cleanly,
  // so the guard only fires on genuinely poisoned systems.
  NodeId n1, n2;
  Circuit c = healthy_core(&n1, &n2);
  c.add<PoisonDevice>("Xok", n2, kGround, 1e-3, 1e-6);
  SolverOptions options;
  options.lint = false;
  Engine engine(c, options);
  const Solution sol = engine.solve_op();
  EXPECT_NEAR(sol.v(n1), 1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(sol.v(n2)));
}

}  // namespace
}  // namespace sscl::spice
