#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.hpp"

namespace sscl::spice {
namespace {

// RC charging: step through R into C, analytic exponential.
TEST(Transient, RcStepResponse) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double r = 1e3, cap = 1e-9;  // tau = 1 us
  c.add<VoltageSource>("V1", in, kGround,
                       SourceSpec::pulse(0, 1, 0.1e-6, 1e-9, 1e-9, 1));
  c.add<Resistor>("R1", in, out, r);
  c.add<Capacitor>("C1", out, kGround, cap);

  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 6e-6;
  const Waveform w = run_transient(engine, opts);

  ASSERT_GT(w.size(), 10u);
  // Compare to the analytic curve at several absolute times.
  const double t0 = 0.1e-6 + 1e-9;  // end of (fast) rise
  for (double tau_mult : {0.5, 1.0, 2.0, 4.0}) {
    const double t = t0 + tau_mult * r * cap;
    const double expected = 1.0 - std::exp(-tau_mult);
    EXPECT_NEAR(w.at(out, t), expected, 0.01) << "at " << tau_mult << " tau";
  }
  EXPECT_NEAR(w.final_value(out), 1.0, 0.01);
}

// RC with trapezoidal integration should conserve the final value and
// match mid-curve much tighter than 1%.
TEST(Transient, RcAccuracyTight) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround,
                       SourceSpec::pulse(0, 1, 0, 1e-9, 1e-9, 1));
  c.add<Resistor>("R1", in, out, 1e4);
  c.add<Capacitor>("C1", out, kGround, 1e-10);  // tau = 1 us

  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 3e-6;
  opts.dt_max = 20e-9;
  const Waveform w = run_transient(engine, opts);
  const double t = 1e-9 + 1e-6;
  EXPECT_NEAR(w.at(out, t), 1.0 - std::exp(-1.0), 2e-3);
}

// RL circuit: current ramps with tau = L/R.
TEST(Transient, RlCurrentRise) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add<VoltageSource>("V1", in, kGround,
                       SourceSpec::pulse(0, 1, 0, 1e-9, 1e-9, 1));
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Inductor>("L1", mid, kGround, 1e-3);  // tau = 1 us

  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 5e-6;
  const Waveform w = run_transient(engine, opts);
  // v(mid) = e^{-t/tau} decays as the inductor current builds.
  EXPECT_NEAR(w.at(mid, 1e-9 + 1e-6), std::exp(-1.0), 0.02);
  EXPECT_NEAR(w.final_value(mid), 0.0, 0.01);
}

// LC oscillator: check the resonant period over several cycles.
TEST(Transient, LcOscillation) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  // Establish an initial inductor current via the source, then drop the
  // drive. The 100k parallel resistance gives Q = R/Z0 = 100: a lightly
  // damped ring at f0.
  c.add<VoltageSource>("V1", c.node("drv"), kGround,
                       SourceSpec::pulse(1, 0, 1e-7, 1e-9, 1e-9, 1));
  c.add<Resistor>("Rsw", c.node("drv"), n1, 100e3);
  c.add<Capacitor>("C1", n1, kGround, 1e-9);
  c.add<Inductor>("L1", n1, kGround, 1e-3);

  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 50e-6;
  opts.dt_max = 50e-9;
  const Waveform w = run_transient(engine, opts);

  // Expected period 2*pi*sqrt(LC) = 6.28 us. The 1 ohm source load damps
  // it slightly; measure zero crossings after the drive has settled.
  const auto period = w.period(n1, 0.0, 5e-6);
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(*period, 2 * M_PI * std::sqrt(1e-3 * 1e-9), 0.3e-6);
}

TEST(Transient, SineSourceTracksAnalytic) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::sine(0.5, 0.4, 100e3));
  c.add<Resistor>("R1", in, kGround, 1e3);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 20e-6;
  const Waveform w = run_transient(engine, opts);
  for (double t : {2.5e-6, 5.0e-6, 12.5e-6}) {
    EXPECT_NEAR(w.at(in, t), 0.5 + 0.4 * std::sin(2 * M_PI * 100e3 * t), 5e-3);
  }
}

TEST(Transient, BreakpointsPreventEdgeSkipping) {
  // A very narrow pulse must not be stepped over.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround,
                       SourceSpec::pulse(0, 1, 5e-6, 1e-9, 1e-9, 10e-9));
  c.add<Resistor>("R1", in, out, 100.0);
  c.add<Capacitor>("C1", out, kGround, 1e-12);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 10e-6;
  const Waveform w = run_transient(engine, opts);
  EXPECT_GT(w.maximum(out), 0.9);
}

TEST(Transient, InitialConditionFromDcOp) {
  // The capacitor starts at the DC solution (0.5 V divider), not zero.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Resistor>("R2", out, kGround, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 1e-6;
  const Waveform w = run_transient(engine, opts);
  EXPECT_NEAR(w.value(out, 0), 0.5, 1e-6);
  EXPECT_NEAR(w.final_value(out), 0.5, 1e-4);
}

TEST(Transient, RejectsNonPositiveTstop) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), kGround, 1e3);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 0.0;
  EXPECT_THROW(run_transient(engine, opts), std::invalid_argument);
}

TEST(Transient, BackwardEulerOptionWorks) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround,
                       SourceSpec::pulse(0, 1, 0, 1e-9, 1e-9, 1));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 6e-6;
  opts.method = IntegrationMethod::kBackwardEuler;
  opts.dt_max = 10e-9;
  const Waveform w = run_transient(engine, opts);
  EXPECT_NEAR(w.final_value(out), 1.0, 0.02);
}

}  // namespace
}  // namespace sscl::spice
