#include "spice/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.hpp"

namespace sscl::spice {
namespace {

// Single-pole RC low-pass: gain and -3dB point.
TEST(Ac, RcLowPass) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0).with_ac(1.0));
  const double r = 1e3, cap = 1e-9;
  c.add<Resistor>("R1", in, out, r);
  c.add<Capacitor>("C1", out, kGround, cap);

  Engine engine(c);
  const double f_pole = 1.0 / (2 * M_PI * r * cap);  // ~159 kHz
  AcResult res = run_ac_decade(engine, f_pole / 1000, f_pole * 1000, 20);

  EXPECT_NEAR(res.low_frequency_gain(out), 1.0, 1e-6);
  EXPECT_NEAR(res.bandwidth_3db(out), f_pole, f_pole * 0.05);

  // At 10x the pole the slope should be -20 dB/dec: |H| ~ f_pole/f.
  const auto freqs = res.frequencies();
  const auto mags = res.magnitude(out);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 20 * f_pole) {
      EXPECT_NEAR(mags[i], f_pole / freqs[i], 0.01 * f_pole / freqs[i]);
    }
  }
}

TEST(Ac, RcPhaseAtPole) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0).with_ac(1.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);
  Engine engine(c);
  const double f_pole = 1.0 / (2 * M_PI * 1e-6);
  AcResult res = run_ac(engine, {f_pole});
  EXPECT_NEAR(res.phase_deg(out)[0], -45.0, 0.5);
  EXPECT_NEAR(res.magnitude(out)[0], 1.0 / std::sqrt(2.0), 1e-3);
}

// RLC series resonance: current peaks at f0, voltage across R peaks.
TEST(Ac, RlcResonance) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId n1 = c.node("n1");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0).with_ac(1.0));
  c.add<Inductor>("L1", in, n1, 1e-3);
  c.add<Capacitor>("C1", n1, out, 1e-9);
  c.add<Resistor>("R1", out, kGround, 50.0);
  Engine engine(c);
  const double f0 = 1.0 / (2 * M_PI * std::sqrt(1e-3 * 1e-9));  // ~159 kHz
  AcResult res = run_ac_decade(engine, f0 / 100, f0 * 100, 40);
  // Find the magnitude peak of v(out).
  const auto freqs = res.frequencies();
  const auto mags = res.magnitude(out);
  std::size_t imax = 0;
  for (std::size_t i = 1; i < mags.size(); ++i) {
    if (mags[i] > mags[imax]) imax = i;
  }
  EXPECT_NEAR(freqs[imax], f0, f0 * 0.1);
  EXPECT_NEAR(mags[imax], 1.0, 0.05);  // at resonance all of Vin across R
}

TEST(Ac, VcvsAmplifierGainFlat) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0).with_ac(1.0));
  c.add<Vcvs>("E1", out, kGround, in, kGround, 42.0);
  c.add<Resistor>("RL", out, kGround, 1e3);
  Engine engine(c);
  AcResult res = run_ac_decade(engine, 1.0, 1e6, 5);
  for (double m : res.magnitude(out)) EXPECT_NEAR(m, 42.0, 1e-9);
}

TEST(Ac, MagnitudeDbConversion) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0).with_ac(10.0));
  c.add<Resistor>("R1", in, kGround, 1e3);
  Engine engine(c);
  AcResult res = run_ac(engine, {1e3});
  EXPECT_NEAR(res.magnitude_db(in)[0], 20.0, 1e-6);
}

}  // namespace
}  // namespace sscl::spice
