// Regression tests for ground-name aliasing. Circuit::node() maps every
// ground alias to kGround in any case; the deck parser must apply the
// same aliasing inside .subckt expansion, or a "vss!" inside a subckt
// becomes a phantom local node ("x1.vss!") that silently floats.

#include <gtest/gtest.h>

#include "device/deck_parser.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"

namespace sscl::spice {
namespace {

TEST(GroundAlias, EveryAliasMapsToGround) {
  Circuit c;
  for (const char* alias :
       {"0", "gnd", "GND", "Gnd", "gnd!", "GND!", "ground", "GROUND", "vss!",
        "VSS!", "Vss!"}) {
    EXPECT_EQ(c.node(alias), kGround) << alias;
    ASSERT_TRUE(c.find_node(alias).has_value()) << alias;
    EXPECT_EQ(*c.find_node(alias), kGround) << alias;
  }
  // No alias may have created a real node.
  EXPECT_EQ(c.node_count(), 0);
}

TEST(GroundAlias, SimilarNamesStayDistinct) {
  Circuit c;
  EXPECT_NE(c.node("vss"), kGround);   // plain vss is a normal net
  EXPECT_NE(c.node("gnd2"), kGround);
  EXPECT_NE(c.node("grounded"), kGround);
  EXPECT_EQ(c.node_count(), 3);
}

TEST(GroundAlias, GroundNameReportsCanonicalZero) {
  Circuit c;
  c.node("vdd");
  EXPECT_EQ(c.node_name(kGround), "0");
}

TEST(GroundAlias, SubcktExpansionDoesNotCreatePhantomGround) {
  // Before the shared is_ground_name() fix, "vss!" inside the subckt
  // was prefixed to a local node "x1.vss!" and the load floated.
  const char* deck =
      "* ground alias in a subckt\n"
      "V1 in 0 1.0\n"
      "R2 in mid 1k\n"
      ".subckt load top\n"
      "R1 top VSS! 1k\n"
      ".ends\n"
      "X1 mid load\n"
      ".op\n"
      ".end\n";
  const device::ParsedDeck parsed = device::parse_deck(deck);
  EXPECT_FALSE(parsed.circuit->find_node("x1.vss!").has_value());

  Engine engine(*parsed.circuit);
  const Solution op = engine.solve_op();
  // R1 really reaches ground: the divider sits at half the supply. With
  // the phantom node, mid floats at 1 V (and lint flags the island).
  EXPECT_NEAR(op.v(*parsed.circuit->find_node("mid")), 0.5, 1e-6);
}

}  // namespace
}  // namespace sscl::spice
