/// \file test_engine_pipeline.cpp
/// Tests for the phased evaluation pipeline: dense/sparse crosscheck,
/// bypass-on vs bypass-off equivalence, legacy knobs-off mode, numeric
/// refactorisation, EngineStats accounting and the solver failure paths
/// (gmin -> source stepping fall-through, pathological-op ConvergenceError,
/// transient timestep underflow).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"
#include "stscl/fabric.hpp"

namespace sscl::spice {
namespace {

const device::Process kProc = device::Process::c180();

/// Build an STSCL buffer chain driven by a constant input; returns the
/// final output signal. The bias generators make this a stiff nonlinear
/// op (feedback opamps + subthreshold MOS), a good pipeline stressor.
stscl::DiffSignal build_buffer_chain(Circuit& c, int stages = 2) {
  stscl::SclParams p;
  stscl::SclFabric fab(c, kProc, p);
  stscl::DiffSignal in = fab.signal("in");
  fab.drive_const(in, true);
  stscl::DiffSignal s = in;
  for (int i = 0; i < stages; ++i) {
    s = fab.buffer(s, "buf" + std::to_string(i));
  }
  return s;
}

/// Max |v_a - v_b| over all node voltages of two solutions.
double max_node_delta(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.node_count(), b.node_count());
  double worst = 0.0;
  for (int i = 0; i < a.node_count(); ++i) {
    worst = std::max(worst, std::fabs(a.v(i) - b.v(i)));
  }
  return worst;
}

/// Solve the same STSCL chain op under two option sets and return the
/// worst node-voltage disagreement.
double crosscheck_op(const SolverOptions& oa, const SolverOptions& ob) {
  Circuit ca, cb;
  build_buffer_chain(ca);
  build_buffer_chain(cb);
  Engine ea(ca, oa), eb(cb, ob);
  const Solution a = ea.solve_op();
  const Solution b = eb.solve_op();
  return max_node_delta(a, b);
}

// ---- S1: dense vs sparse crosscheck ----------------------------------

TEST(EnginePipeline, DenseSparseCrosscheckStsclGate) {
  SolverOptions dense, sparse;
  dense.force_dense = true;
  sparse.force_sparse = true;

  Circuit cd, cs;
  build_buffer_chain(cd);
  build_buffer_chain(cs);
  Engine ed(cd, dense), es(cs, sparse);
  EXPECT_FALSE(ed.is_sparse());
  EXPECT_TRUE(es.is_sparse());

  const Solution vd = ed.solve_op();
  const Solution vs = es.solve_op();
  EXPECT_LT(max_node_delta(vd, vs), dense.vntol)
      << "dense and sparse LU paths disagree on the same op";
}

// ---- bypass / baseline / legacy equivalence --------------------------

TEST(EnginePipeline, BypassMatchesNoBypassOp) {
  SolverOptions on, off;
  off.bypass = false;

  Circuit con, coff;
  build_buffer_chain(con);
  build_buffer_chain(coff);
  Engine eon(con, on), eoff(coff, off);
  const Solution son = eon.solve_op();
  const Solution soff = eoff.solve_op();

  // Bypass may settle on a point within the Newton tolerance band.
  const double tol = on.vntol * 10;
  EXPECT_LT(max_node_delta(son, soff), tol);
  EXPECT_GT(eon.stats().bypass_hits, 0)
      << "bypass enabled but no device ever reused its cache";
  EXPECT_EQ(eoff.stats().bypass_hits, 0);
  EXPECT_GT(eoff.stats().device_evals, eon.stats().device_evals)
      << "bypass did not reduce full model evaluations";
}

TEST(EnginePipeline, LegacyKnobsOffMatchesPhased) {
  SolverOptions phased, legacy;
  legacy.bypass = false;
  legacy.cache_linear = false;
  legacy.reuse_factorization = false;

  const double delta = crosscheck_op(phased, legacy);
  EXPECT_LT(delta, phased.vntol * 10)
      << "phased pipeline drifted away from the legacy engine";
}

TEST(EnginePipeline, BypassMatchesNoBypassTransient) {
  auto run = [](bool bypass, EngineStats* stats_out) {
    Circuit c;
    stscl::SclParams p;
    stscl::SclFabric fab(c, kProc, p);
    stscl::DiffSignal in = fab.signal("in");
    const stscl::SclModel model;
    const double td = model.delay(p.iss);
    fab.drive_pulse(in, 4 * td, td / 4, 40 * td);
    stscl::DiffSignal out = fab.buffer(fab.buffer(in, "b0"), "b1");

    SolverOptions so;
    so.bypass = bypass;
    Engine engine(c, so);
    TransientOptions to;
    to.tstop = 12 * td;
    to.dt_max = td / 3;
    Waveform w = run_transient(engine, to);
    if (stats_out) *stats_out = engine.stats();

    // Sample the differential output on a fixed grid.
    std::vector<double> samples;
    for (int i = 0; i <= 60; ++i) {
      const double t = to.tstop * i / 60.0;
      samples.push_back(w.at(out.p, t) - w.at(out.n, t));
    }
    return samples;
  };

  EngineStats stats_on, stats_off;
  const std::vector<double> von = run(true, &stats_on);
  const std::vector<double> voff = run(false, &stats_off);
  ASSERT_EQ(von.size(), voff.size());

  // The step controller may pick slightly different time grids once
  // voltages differ at the Newton-tolerance level; allow a small
  // multiple of the swing-relative tolerance at interpolated samples.
  for (std::size_t i = 0; i < von.size(); ++i) {
    EXPECT_NEAR(von[i], voff[i], 2e-3) << "sample " << i;
  }
  EXPECT_GT(stats_on.bypass_hits, 0);
  EXPECT_EQ(stats_off.bypass_hits, 0);
  EXPECT_GT(stats_on.transient_steps, 0);
}

// ---- numeric refactorisation and stats accounting --------------------

TEST(EnginePipeline, NumericRefactorisationUsed) {
  SolverOptions so;
  so.force_sparse = true;

  Circuit c;
  build_buffer_chain(c);
  Engine engine(c, so);
  engine.solve_op();

  const EngineStats& st = engine.stats();
  EXPECT_GT(st.factors, 0);
  EXPECT_GT(st.full_factors, 0);  // at least the first factorisation
  EXPECT_GT(st.numeric_refactors, 0)
      << "pivot-reuse path never engaged on a multi-iteration sparse op";
  EXPECT_EQ(st.factors, st.full_factors + st.numeric_refactors);

  // Knob off: every factorisation is a full pivoting pass.
  Circuit c2;
  build_buffer_chain(c2);
  SolverOptions so2 = so;
  so2.reuse_factorization = false;
  Engine e2(c2, so2);
  e2.solve_op();
  EXPECT_EQ(e2.stats().numeric_refactors, 0);
}

TEST(EnginePipeline, StatsCountersAccumulate) {
  Circuit c;
  build_buffer_chain(c);
  Engine engine(c);
  engine.solve_op();

  const EngineStats& st = engine.stats();
  EXPECT_EQ(st.op_solves, 1);
  EXPECT_GT(st.newton_iterations, 0);
  EXPECT_GT(st.assemblies, 0);
  EXPECT_GT(st.baseline_builds, 0);
  EXPECT_GT(st.static_loads, 0);
  EXPECT_GT(st.device_loads, 0);
  EXPECT_GT(st.device_evals, 0);
  EXPECT_GE(st.bypass_rate(), 0.0);
  EXPECT_LE(st.bypass_rate(), 1.0);
  EXPECT_GE(st.seconds_assemble, 0.0);
  EXPECT_GE(st.seconds_solve, 0.0);

  engine.stats().reset();
  EXPECT_EQ(engine.stats().newton_iterations, 0);
  EXPECT_EQ(engine.stats().op_solves, 0);
}

// ---- legacy devices without a pattern pass ---------------------------

/// A device that skips reserve() entirely and stamps through the hashed
/// add() path, like external/user devices predating the pipeline.
class LegacyResistor final : public Device {
 public:
  LegacyResistor(std::string name, NodeId a, NodeId b, double r)
      : Device(std::move(name)), a_(a), b_(b), g_(1.0 / r) {}
  void load(LoadContext& ctx) override {
    ctx.a_nn(a_, a_, g_);
    ctx.a_nn(b_, b_, g_);
    ctx.a_nn(a_, b_, -g_);
    ctx.a_nn(b_, a_, -g_);
  }

 private:
  NodeId a_, b_;
  double g_;
};

TEST(EnginePipeline, LegacyDeviceWithoutReserveStillWorks) {
  for (bool sparse : {false, true}) {
    Circuit c;
    const NodeId n1 = c.node("n1");
    const NodeId n2 = c.node("n2");
    c.add<VoltageSource>("v1", n1, kGround, SourceSpec::dc(1.0));
    c.add<Resistor>("r1", n1, n2, 1e3);
    // The legacy device grows the sparse pattern after finalize; the
    // slot table must re-sync without corrupting reserved slots.
    c.add<LegacyResistor>("rleg", n2, kGround, 1e3);
    SolverOptions so;
    so.lint = false;
    so.force_sparse = sparse;
    so.force_dense = !sparse;
    Engine engine(c, so);
    const Solution op = engine.solve_op();
    EXPECT_NEAR(op.v(n2), 0.5, 1e-9) << (sparse ? "sparse" : "dense");
  }
}

// ---- S3: failure paths -----------------------------------------------

TEST(EnginePipeline, PathologicalOpThrowsConvergenceError) {
  // 1 A forced into a node whose only DC path is gmin: the solution
  // (10^15 V) is unreachable under max_step_v damping.
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<CurrentSource>("i1", kGround, n1, SourceSpec::dc(1.0));
  c.add<Capacitor>("c1", n1, kGround, 1e-12);
  SolverOptions so;
  so.lint = false;  // the ERC would reject this net before solving
  Engine engine(c, so);
  EXPECT_THROW(engine.solve_op(), ConvergenceError);
  EXPECT_GT(engine.stats().op_gmin_steps, 0);
  EXPECT_GT(engine.stats().op_source_steps, 0);
}

/// Refuses to converge (reports limiting forever) until it has seen a
/// source-stepping iteration, i.e. source_scale < 1. Electrically it is
/// just a resistor to ground.
class FlakyDevice final : public Device {
 public:
  FlakyDevice(std::string name, NodeId a) : Device(std::move(name)), a_(a) {}
  void reserve(PatternContext& ctx) override {
    gp_ = ctx.conductance(a_, kGround);
  }
  void load(LoadContext& ctx) override {
    ctx.stamp_conductance(gp_, 1e-3);
    if (ctx.source_scale() < 1.0) unlocked_ = true;
    if (!unlocked_) ctx.set_not_converged();
  }

 private:
  NodeId a_;
  ConductancePattern gp_;
  bool unlocked_ = false;
};

TEST(EnginePipeline, SourceSteppingFallThrough) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<VoltageSource>("v1", n1, kGround, SourceSpec::dc(1.0));
  c.add<FlakyDevice>("flaky", n1);
  SolverOptions so;
  so.lint = false;
  so.max_iterations = 25;  // fail the doomed strategies quickly
  Engine engine(c, so);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(n1), 1.0, 1e-9);
  // Plain Newton and gmin stepping must both have failed before source
  // stepping unlocked the device.
  EXPECT_GT(engine.stats().op_gmin_steps, 0);
  EXPECT_GT(engine.stats().op_source_steps, 0);
}

/// Stamps a clean 1 kOhm to ground at DC but poisons the rhs with NaN
/// for any transient step, so every timestep's Newton solve fails.
class NanAfterZeroDevice final : public Device {
 public:
  NanAfterZeroDevice(std::string name, NodeId a)
      : Device(std::move(name)), a_(a) {}
  void reserve(PatternContext& ctx) override {
    gp_ = ctx.conductance(a_, kGround);
    rp_ = ctx.current_source(a_, kGround);
  }
  void load(LoadContext& ctx) override {
    ctx.stamp_conductance(gp_, 1e-3);
    if (ctx.mode() == AnalysisMode::kTransient && ctx.time() > 0.0) {
      ctx.stamp_current_source(rp_, std::nan(""));
    }
  }

 private:
  NodeId a_;
  ConductancePattern gp_;
  CurrentPattern rp_;
};

TEST(EnginePipeline, TransientNonFiniteStampThrowsNamingDevice) {
  // The stamp guard fires on the first poisoned solve and names the
  // device — no timestep-halving retries, which could never heal a
  // NaN stamp and used to bury the root cause under an underflow.
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<VoltageSource>("v1", n1, kGround, SourceSpec::dc(1.0));
  c.add<NanAfterZeroDevice>("nan", n1);
  SolverOptions so;
  so.lint = false;
  Engine engine(c, so);
  TransientOptions to;
  to.tstop = 1e-6;
  try {
    run_transient(engine, to);
    FAIL() << "expected ConvergenceError naming the poisoned device";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("nan"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(engine.stats().transient_steps, 0);
}

}  // namespace
}  // namespace sscl::spice
