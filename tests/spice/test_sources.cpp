#include "spice/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::spice {
namespace {

TEST(Sources, DcIsConstant) {
  const SourceSpec s = SourceSpec::dc(1.8);
  EXPECT_DOUBLE_EQ(s.value(0.0), 1.8);
  EXPECT_DOUBLE_EQ(s.value(1.0), 1.8);
  EXPECT_DOUBLE_EQ(s.dc_value(), 1.8);
}

TEST(Sources, PulseShape) {
  // v1=0, v2=1, delay 1u, rise 0.1u, fall 0.2u, width 2u.
  const SourceSpec s = SourceSpec::pulse(0, 1, 1e-6, 0.1e-6, 0.2e-6, 2e-6);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(0.9e-6), 0.0);
  EXPECT_NEAR(s.value(1.05e-6), 0.5, 1e-9);  // mid-rise
  EXPECT_DOUBLE_EQ(s.value(2e-6), 1.0);      // flat top
  EXPECT_NEAR(s.value(3.2e-6), 0.5, 1e-9);   // mid-fall
  EXPECT_DOUBLE_EQ(s.value(4e-6), 0.0);      // back low
}

TEST(Sources, PulsePeriodic) {
  const SourceSpec s = SourceSpec::pulse(0, 1, 0, 1e-9, 1e-9, 0.5e-6, 1e-6);
  EXPECT_DOUBLE_EQ(s.value(0.25e-6), 1.0);
  EXPECT_DOUBLE_EQ(s.value(0.75e-6), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1.25e-6), 1.0);  // second period
  EXPECT_DOUBLE_EQ(s.value(7.75e-6), 0.0);
}

TEST(Sources, PulseZeroEdgeDoesNotDivideByZero) {
  const SourceSpec s = SourceSpec::pulse(0, 1, 0, 0, 0, 1e-6);
  EXPECT_DOUBLE_EQ(s.value(0.5e-6), 1.0);
  EXPECT_TRUE(std::isfinite(s.value(1e-15)));
}

TEST(Sources, SineShape) {
  const SourceSpec s = SourceSpec::sine(0.5, 0.25, 1e3);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.5);
  EXPECT_NEAR(s.value(0.25e-3), 0.75, 1e-9);  // quarter period peak
  EXPECT_NEAR(s.value(0.75e-3), 0.25, 1e-9);  // trough
}

TEST(Sources, SineDelayAndDamping) {
  const SourceSpec s = SourceSpec::sine(0.0, 1.0, 1e3, 1e-3, 1e3);
  EXPECT_DOUBLE_EQ(s.value(0.5e-3), 0.0);  // before delay
  // After one time constant the envelope decays by e^-1.
  const double v_peak = s.value(1e-3 + 0.25e-3);
  EXPECT_NEAR(v_peak, std::exp(-0.25) * 1.0, 1e-6);
}

TEST(Sources, PwlInterpolatesAndClamps) {
  const SourceSpec s = SourceSpec::pwl({0, 1e-6, 2e-6}, {0, 1, 0.5});
  EXPECT_DOUBLE_EQ(s.value(0.5e-6), 0.5);
  EXPECT_DOUBLE_EQ(s.value(1.5e-6), 0.75);
  EXPECT_DOUBLE_EQ(s.value(5e-6), 0.5);  // clamps to last value
}

TEST(Sources, PwlRejectsNonMonotonic) {
  EXPECT_THROW(SourceSpec::pwl({0, 2e-6, 1e-6}, {0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(SourceSpec::pwl({}, {}), std::invalid_argument);
  EXPECT_THROW(SourceSpec::pwl({0, 1}, {0}), std::invalid_argument);
}

TEST(Sources, ExpShape) {
  const SourceSpec s = SourceSpec::exp(0, 1, 1e-6, 1e-6, 10e-6, 1e-6);
  EXPECT_DOUBLE_EQ(s.value(0.5e-6), 0.0);
  EXPECT_NEAR(s.value(2e-6), 1.0 - std::exp(-1.0), 1e-9);
  EXPECT_GT(s.value(9.99e-6), 0.99);
  EXPECT_LT(s.value(13e-6), 0.2);  // decaying after td2
}

TEST(Sources, PulseBreakpoints) {
  const SourceSpec s = SourceSpec::pulse(0, 1, 1e-6, 0.1e-6, 0.1e-6, 1e-6);
  std::vector<double> bp;
  s.add_breakpoints(10e-6, bp);
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_DOUBLE_EQ(bp[0], 1e-6);
  EXPECT_DOUBLE_EQ(bp[1], 1.1e-6);
  EXPECT_DOUBLE_EQ(bp[2], 2.1e-6);
  EXPECT_DOUBLE_EQ(bp[3], 2.2e-6);
}

TEST(Sources, PeriodicPulseBreakpointsWithinWindow) {
  const SourceSpec s = SourceSpec::pulse(0, 1, 0, 0.1e-6, 0.1e-6, 0.4e-6, 1e-6);
  std::vector<double> bp;
  s.add_breakpoints(2.5e-6, bp);
  for (double t : bp) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 2.5e-6);
  }
  EXPECT_GE(bp.size(), 7u);
}

TEST(Sources, AcAnnotation) {
  SourceSpec s = SourceSpec::dc(0.0).with_ac(1.0, 45.0);
  EXPECT_DOUBLE_EQ(s.ac_magnitude(), 1.0);
  EXPECT_DOUBLE_EQ(s.ac_phase_deg(), 45.0);
}

}  // namespace
}  // namespace sscl::spice
