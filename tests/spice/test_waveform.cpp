#include "spice/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sscl::spice {
namespace {

Waveform make_ramp() {
  // One node ramping 0 -> 1 over 1 s sampled at 11 points.
  Waveform w(1);
  for (int i = 0; i <= 10; ++i) {
    w.append(i * 0.1, {i * 0.1});
  }
  return w;
}

TEST(Waveform, InterpolatesBetweenSamples) {
  const Waveform w = make_ramp();
  EXPECT_NEAR(w.at(0, 0.55), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(w.at(0, -1.0), 0.0);  // clamp below
  EXPECT_DOUBLE_EQ(w.at(0, 2.0), 1.0);   // clamp above
}

TEST(Waveform, CrossDetectsRise) {
  const Waveform w = make_ramp();
  const auto t = w.cross(0, 0.5, Edge::kRise);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
  EXPECT_FALSE(w.cross(0, 0.5, Edge::kFall).has_value());
}

TEST(Waveform, CrossRespectsStartTime) {
  Waveform w(1);
  // Triangle: up, down, up.
  const double ts[] = {0, 1, 2, 3};
  const double vs[] = {0, 1, 0, 1};
  for (int i = 0; i < 4; ++i) w.append(ts[i], {vs[i]});
  const auto t1 = w.cross(0, 0.5, Edge::kRise);
  ASSERT_TRUE(t1.has_value());
  EXPECT_NEAR(*t1, 0.5, 1e-12);
  const auto t2 = w.cross(0, 0.5, Edge::kRise, 1.0);
  ASSERT_TRUE(t2.has_value());
  EXPECT_NEAR(*t2, 2.5, 1e-12);
  const auto tf = w.cross(0, 0.5, Edge::kFall);
  ASSERT_TRUE(tf.has_value());
  EXPECT_NEAR(*tf, 1.5, 1e-12);
}

TEST(Waveform, CrossingsEnumeratesAll) {
  Waveform w(1);
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.01;
    w.append(t, {std::sin(2 * M_PI * 2.0 * t)});  // 2 Hz over 1 s
  }
  const auto rises = w.crossings(0, 0.25, Edge::kRise);
  EXPECT_EQ(rises.size(), 2u);
  const auto falls = w.crossings(0, 0.25, Edge::kFall);
  EXPECT_EQ(falls.size(), 2u);
}

TEST(Waveform, DelayBetweenSignals) {
  Waveform w(2);
  // Signal 0 rises at t=1; signal 1 rises at t=1.4.
  w.append(0.0, {0.0, 0.0});
  w.append(1.0, {0.0, 0.0});
  w.append(1.2, {1.0, 0.0});
  w.append(1.4, {1.0, 0.0});
  w.append(1.6, {1.0, 1.0});
  const auto d = w.delay(0, 0.5, Edge::kRise, 1, 0.5, Edge::kRise);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 0.4, 1e-9);
}

TEST(Waveform, MinMaxWindows) {
  const Waveform w = make_ramp();
  EXPECT_DOUBLE_EQ(w.minimum(0), 0.0);
  EXPECT_DOUBLE_EQ(w.maximum(0), 1.0);
  EXPECT_DOUBLE_EQ(w.minimum(0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(0), 1.0);
}

TEST(Waveform, PeriodOfSine) {
  Waveform w(1);
  for (int i = 0; i <= 1000; ++i) {
    const double t = i * 1e-3;
    w.append(t, {std::sin(2 * M_PI * 10.0 * t)});
  }
  const auto p = w.period(0, 0.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.1, 1e-3);
}

TEST(Waveform, GroundNodeReadsZero) {
  const Waveform w = make_ramp();
  EXPECT_DOUBLE_EQ(w.at(kGround, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(w.value(kGround, 3), 0.0);
}

TEST(Waveform, RejectsBackwardsTime) {
  Waveform w(1);
  w.append(1.0, {0.0});
  EXPECT_THROW(w.append(0.5, {0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace sscl::spice
