#include "spice/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analog/preamp.hpp"
#include "device/ekv.hpp"
#include "device/mosfet.hpp"
#include "spice/elements.hpp"

namespace sscl::spice {
namespace {

constexpr double kB = 1.380649e-23;
constexpr double kT = 300.15;

// Textbook result: the integrated noise of an RC filter driven by the
// resistor's own thermal noise is kT/C, independent of R.
TEST(Noise, KtOverCLaw) {
  for (double r : {1e3, 1e5, 1e7}) {
    Circuit c;
    const NodeId out = c.node("out");
    const double cap = 1e-12;
    c.add<Resistor>("R1", out, kGround, r);
    c.add<Capacitor>("C1", out, kGround, cap);
    Engine engine(c);
    // Integrate far past the pole so the tail is captured.
    const double f_pole = 1.0 / (2 * M_PI * r * cap);
    const NoiseResult nr =
        run_noise_decade(engine, out, kGround, f_pole / 1e3, f_pole * 1e3, 40);
    const double expected_rms = std::sqrt(kB * kT / cap);
    EXPECT_NEAR(nr.v_rms / expected_rms, 1.0, 0.03) << "R=" << r;
  }
}

TEST(Noise, WhiteSpectrumBelowPole) {
  Circuit c;
  const NodeId out = c.node("out");
  const double r = 1e6, cap = 1e-12;
  c.add<Resistor>("R1", out, kGround, r);
  c.add<Capacitor>("C1", out, kGround, cap);
  Engine engine(c);
  const NoiseResult nr = run_noise(engine, out, kGround, {1.0, 10.0, 100.0});
  // Below the pole the output PSD equals 4kTR.
  const double expected = 4 * kB * kT * r;
  for (double s : nr.s_out) EXPECT_NEAR(s / expected, 1.0, 0.01);
}

TEST(Noise, TwoResistorsPartitionCorrectly) {
  // Divider: both resistors contribute (R1 || R2) thermal noise.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", in, out, 2e3);
  c.add<Resistor>("R2", out, kGround, 2e3);
  Engine engine(c);
  const NoiseResult nr = run_noise(engine, out, kGround, {100.0});
  const double r_par = 1e3;
  EXPECT_NEAR(nr.s_out[0] / (4 * kB * kT * r_par), 1.0, 0.01);
  // Contributions are equal by symmetry.
  ASSERT_EQ(nr.source_contribution.size(), 2u);
}

TEST(Noise, MosChannelShotNoise) {
  // Common-source stage: output noise from the device alone is
  // 2qI * Rload^2 at low frequency.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId out = c.node("out");
  const NodeId in = c.node("in");
  const device::Process proc = device::Process::c180();
  c.add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
  const double rl = 1e8;
  c.add<Resistor>("RL", vdd, out, rl);
  device::MosGeometry geo{2e-6, 1e-6, 0, 0};
  const double vbias =
      device::ekv_vgs_for_current(proc.nmos, geo, 6e-9, 0.6, 300.15);
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(vbias));
  auto* m1 = c.add<device::Mosfet>("M1", out, in, kGround, kGround, proc.nmos,
                                   geo, 300.15);
  Engine engine(c);
  const NoiseResult nr = run_noise(engine, out, kGround, {1.0, 2.0});
  const double id = std::fabs(m1->ids());
  // Output resistance = RL || 1/gds.
  const double rout = 1.0 / (1.0 / rl + m1->operating_point().gds);
  const double s_mos = 2 * 1.602176634e-19 * id * rout * rout;
  const double s_res = 4 * kB * kT / rl * rout * rout;
  EXPECT_NEAR(nr.s_out[0] / (s_mos + s_res), 1.0, 0.05);
  // At 6 nA the shot noise dominates the 100 Mohm load's thermal noise.
  EXPECT_EQ(nr.source_labels[nr.dominant_source()].rfind("channel", 0), 0u);
}

TEST(Noise, PreampInputReferredFloor) {
  // The full preamp: derive the input-referred rms noise that the ADC
  // model assumes (~1 LSB class at nA bias over its signal band).
  const device::Process proc = device::Process::c180();
  Circuit c;
  analog::PreampParams p;
  p.iss = 1e-9;
  p.r_decouple = 10.0 * p.vsw / p.iss;  // the MC device, as on chip
  analog::PreampInstance inst = analog::build_preamp(c, proc, p);
  Engine engine(c);
  // The comparator decision is band-limited by its regeneration window
  // (noise bandwidth ~ fs class, not the preamp bandwidth): integrate
  // over a 1 kHz decision band, the paper's 800 S/s operating point.
  const NoiseResult nr =
      run_noise_decade(engine, inst.out_p, inst.out_n, 1.0, 1e3, 10);
  // Input-referred: divide by the low-frequency gain.
  analog::PreampResponse resp = measure_preamp_response(proc, p);
  const double vin_rms = nr.v_rms / resp.dc_gain;
  // Sub-LSB to LSB class: consistent with (and justifying) the 1.2 mV
  // total input noise budget in FaiAdcConfig, which also carries the
  // folder and reference noise.
  EXPECT_GT(vin_rms, 0.05e-3);
  EXPECT_LT(vin_rms, 2.5e-3);

  // Full-bandwidth noise is several LSB -- the reason the comparator's
  // band-limiting matters at these gigaohm impedance levels.
  const NoiseResult wide =
      run_noise_decade(engine, inst.out_p, inst.out_n, 1.0, 10e6, 10);
  EXPECT_GT(wide.v_rms / resp.dc_gain, 2e-3);
}

}  // namespace
}  // namespace sscl::spice
