#include "spice/sparse.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sscl::spice {
namespace {

TEST(SparseMatrix, SolvesSmallSystem) {
  SparseMatrix m(3);
  // [4 1 0; 1 3 1; 0 1 2] x = b with x = (1, 2, 3)
  m.add(0, 0, 4);
  m.add(0, 1, 1);
  m.add(1, 0, 1);
  m.add(1, 1, 3);
  m.add(1, 2, 1);
  m.add(2, 1, 1);
  m.add(2, 2, 2);
  std::vector<double> b = {4 + 2, 1 + 6 + 3, 2 + 6};
  ASSERT_TRUE(m.factor());
  m.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

TEST(SparseMatrix, AccumulatesDuplicateAdds) {
  SparseMatrix m(1);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  std::vector<double> b = {6.0};
  ASSERT_TRUE(m.factor());
  m.solve(b);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
}

TEST(SparseMatrix, PivotsZeroDiagonal) {
  SparseMatrix m(2);
  m.add(0, 1, 1.0);
  m.add(1, 0, 2.0);
  std::vector<double> b = {3.0, 8.0};
  ASSERT_TRUE(m.factor());
  m.solve(b);
  EXPECT_NEAR(b[0], 4.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SparseMatrix, DetectsSingular) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 2.0);
  m.add(1, 1, 4.0);
  EXPECT_FALSE(m.factor());
}

TEST(SparseMatrix, StructurallySingularFails) {
  SparseMatrix m(3);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  // Row/column 2 left empty.
  EXPECT_FALSE(m.factor());
}

TEST(SparseMatrix, ClearKeepsPatternAndRefactors) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  ASSERT_TRUE(m.factor());
  m.clear();
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  std::vector<double> b = {2.0, 8.0};
  ASSERT_TRUE(m.factor());
  m.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

// Property-style check: random sparse diagonally dominant systems agree
// with a brute-force dense solve across a size sweep.
class SparseRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseRandomTest, MatchesDenseReference) {
  const int n = GetParam();
  util::Rng rng(1000 + n);
  SparseMatrix m(n);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));

  // Tridiagonal-ish plus random fill: resembles an MNA pattern.
  for (int i = 0; i < n; ++i) {
    auto put = [&](int r, int c, double v) {
      m.add(r, c, v);
      dense[r][c] += v;
    };
    put(i, i, 4.0 + rng.uniform());
    if (i > 0) put(i, i - 1, -rng.uniform());
    if (i + 1 < n) put(i, i + 1, -rng.uniform());
    const int j = static_cast<int>(rng.bounded(n));
    put(i, j, 0.5 * rng.uniform(-1, 1));
  }

  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) x_true[i] = rng.uniform(-1, 1);
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += dense[i][j] * x_true[j];
  }

  ASSERT_TRUE(m.factor());
  m.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseRandomTest,
                         ::testing::Values(1, 2, 5, 17, 64, 200, 500));

TEST(SparseMatrix, FactorNonzerosReported) {
  SparseMatrix m(3);
  m.add(0, 0, 1);
  m.add(1, 1, 1);
  m.add(2, 2, 1);
  ASSERT_TRUE(m.factor());
  EXPECT_GE(m.factor_nonzeros(), 6u);  // 3 L diag + 3 U diag
  EXPECT_EQ(m.nonzeros(), 3u);
}

}  // namespace
}  // namespace sscl::spice
