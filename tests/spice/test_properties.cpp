#include <gtest/gtest.h>

#include <cmath>

#include "spice/ac.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/transient.hpp"
#include "util/rng.hpp"

namespace sscl::spice {
namespace {

/// Build a random connected resistor network with n nodes, return the
/// node list. Every node gets a leak to ground so the matrix is
/// well-posed.
std::vector<NodeId> random_resistor_network(Circuit& c, util::Rng& rng,
                                            int n) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(c.node("n" + std::to_string(i)));
  for (int i = 1; i < n; ++i) {
    // Spanning-tree edge keeps the network connected.
    const int j = static_cast<int>(rng.bounded(i));
    c.add<Resistor>("Rt" + std::to_string(i), nodes[i], nodes[j],
                    rng.uniform(1e3, 1e6));
  }
  for (int e = 0; e < n; ++e) {
    const int i = static_cast<int>(rng.bounded(n));
    const int j = static_cast<int>(rng.bounded(n));
    if (i != j) {
      c.add<Resistor>("Rx" + std::to_string(e), nodes[i], nodes[j],
                      rng.uniform(1e3, 1e6));
    }
  }
  for (int i = 0; i < n; ++i) {
    c.add<Resistor>("Rg" + std::to_string(i), nodes[i], kGround,
                    rng.uniform(1e4, 1e7));
  }
  return nodes;
}

// Superposition: the response to two sources equals the sum of the
// responses to each source alone. Parameterised over network sizes.
class SuperpositionTest : public ::testing::TestWithParam<int> {};

TEST_P(SuperpositionTest, HoldsOnRandomLinearNetworks) {
  const int n = GetParam();
  util::Rng rng(1000 + n);

  // Build the same topology three times (same seed for structure).
  auto build = [&](double i1, double i2, std::vector<NodeId>* nodes_out) {
    Circuit c;
    util::Rng net_rng(555 + n);
    auto nodes = random_resistor_network(c, net_rng, n);
    c.add<CurrentSource>("I1", kGround, nodes[0], SourceSpec::dc(i1));
    c.add<CurrentSource>("I2", kGround, nodes[n / 2], SourceSpec::dc(i2));
    Engine engine(c);
    const Solution op = engine.solve_op();
    std::vector<double> v;
    for (NodeId node : nodes) v.push_back(op.v(node));
    if (nodes_out) *nodes_out = nodes;
    return v;
  };

  const double ia = rng.uniform(1e-6, 1e-3);
  const double ib = rng.uniform(1e-6, 1e-3);
  const auto v_both = build(ia, ib, nullptr);
  const auto v_a = build(ia, 0.0, nullptr);
  const auto v_b = build(0.0, ib, nullptr);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(v_both[k], v_a[k] + v_b[k],
                1e-9 * std::max(1.0, std::fabs(v_both[k])))
        << "node " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SuperpositionTest,
                         ::testing::Values(4, 10, 30, 90, 150));

// Reciprocity: in a passive network, the voltage at B from a current at
// A equals the voltage at A from the same current at B.
class ReciprocityTest : public ::testing::TestWithParam<int> {};

TEST_P(ReciprocityTest, HoldsOnRandomLinearNetworks) {
  const int n = GetParam();
  auto probe = [&](int inject, int sense) {
    Circuit c;
    util::Rng net_rng(777 + n);
    auto nodes = random_resistor_network(c, net_rng, n);
    c.add<CurrentSource>("I", kGround, nodes[inject], SourceSpec::dc(1e-3));
    Engine engine(c);
    return engine.solve_op().v(nodes[sense]);
  };
  EXPECT_NEAR(probe(0, n - 1), probe(n - 1, 0), 1e-9);
  EXPECT_NEAR(probe(1, n / 2), probe(n / 2, 1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReciprocityTest, ::testing::Values(6, 40, 120));

// Charge conservation: a constant current into a capacitor for time T
// deposits exactly I*T of charge (trapezoidal integration is exact for
// linear ramps).
TEST(TransientProperty, ChargeConservation) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<CurrentSource>("I1", kGround, a, SourceSpec::dc(1e-9));
  c.add<Capacitor>("C1", a, kGround, 1e-12);
  // A huge bleed resistor defines the DC point without disturbing the
  // ramp noticeably.
  c.add<Resistor>("Rb", a, kGround, 1e15);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 1e-3;
  // The DC op would settle at I*R; start the ramp from zero instead by
  // pulsing the current on after t=0.
  auto* src = dynamic_cast<CurrentSource*>(c.find_device("I1"));
  src->set_spec(SourceSpec::pulse(0, 1e-9, 1e-6, 1e-9, 1e-9, 1.0));
  const Waveform w = run_transient(engine, opts);
  // v(T) = I * (T - t_on) / C.
  const double expected = 1e-9 * (1e-3 - 1e-6) / 1e-12;
  EXPECT_NEAR(w.final_value(a) / expected, 1.0, 1e-3);
}

// Energy sanity: in an RC discharge the resistor dissipates the energy
// the capacitor held (checked via the time constant rather than an
// explicit integral: V(t) follows the exact exponential).
TEST(TransientProperty, RcDischargeExponential) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("V1", c.node("drv"), kGround,
                       SourceSpec::pulse(1, 0, 1e-6, 1e-9, 1e-9, 1));
  c.add<Resistor>("Rsw", c.node("drv"), a, 1e2);
  c.add<Capacitor>("C1", a, kGround, 1e-9);
  Engine engine(c);
  TransientOptions opts;
  opts.tstop = 2e-6;
  opts.dt_max = 2e-9;
  const Waveform w = run_transient(engine, opts);
  const double tau = 1e2 * 1e-9;
  for (double k : {1.0, 2.0, 3.0}) {
    EXPECT_NEAR(w.at(a, 1e-6 + 1e-9 + k * tau), std::exp(-k), 0.02) << k;
  }
}

// AC/transient consistency: the -3dB bandwidth measured by AC matches
// the 10-90% rise time of the step response (t_r ~ 0.35/BW).
TEST(AcTransientConsistency, RiseTimeMatchesBandwidth) {
  const double r = 1e4, cap = 1e-10;
  double bw;
  {
    Circuit c;
    const NodeId in = c.node("in"), out = c.node("out");
    c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0).with_ac(1.0));
    c.add<Resistor>("R1", in, out, r);
    c.add<Capacitor>("C1", out, kGround, cap);
    Engine engine(c);
    bw = run_ac_decade(engine, 1e2, 1e8, 20).bandwidth_3db(out);
  }
  double t_rise;
  {
    Circuit c;
    const NodeId in = c.node("in"), out = c.node("out");
    c.add<VoltageSource>("V1", in, kGround,
                         SourceSpec::pulse(0, 1, 1e-7, 1e-10, 1e-10, 1));
    c.add<Resistor>("R1", in, out, r);
    c.add<Capacitor>("C1", out, kGround, cap);
    Engine engine(c);
    TransientOptions opts;
    opts.tstop = 1e-5;
    const Waveform w = run_transient(engine, opts);
    const auto t10 = w.cross(out, 0.1, Edge::kRise);
    const auto t90 = w.cross(out, 0.9, Edge::kRise);
    ASSERT_TRUE(t10 && t90);
    t_rise = *t90 - *t10;
  }
  EXPECT_NEAR(t_rise * bw, 0.35, 0.03);
}

// Newton robustness: the same nonlinear circuit converges to the same
// answer from very different nodesets.
TEST(NewtonProperty, SolutionIndependentOfInitialGuess) {
  auto solve_from = [&](double guess) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId a = c.node("a");
    c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(1.5));
    c.add<Resistor>("R1", in, a, 1e5);
    // Two stacked diodes (exponential nonlinearity).
    const NodeId m = c.node("m");
    c.add<Resistor>("R2", a, m, 1e3);
    c.add<Resistor>("R3", m, kGround, 1e6);
    Engine engine(c);
    engine.set_nodeset(a, guess);
    engine.set_nodeset(m, guess * 0.5);
    return engine.solve_op().v(a);
  };
  const double v0 = solve_from(0.0);
  EXPECT_NEAR(solve_from(1.5), v0, 1e-6);
  EXPECT_NEAR(solve_from(-1.0), v0, 1e-6);
}

}  // namespace
}  // namespace sscl::spice
