#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "util/rng.hpp"

namespace sscl::spice {
namespace {

TEST(DenseMatrix, Solves2x2) {
  DenseMatrix<double> m(2);
  m.add(0, 0, 2.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 3.0);
  std::vector<double> b = {5.0, 10.0};
  m.factor_and_solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal) {
  DenseMatrix<double> m(2);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  std::vector<double> b = {3.0, 7.0};
  m.factor_and_solve(b);
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseMatrix, DetectsSingular) {
  DenseMatrix<double> m(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 2.0);
  m.add(1, 1, 4.0);
  EXPECT_FALSE(m.factor());
}

TEST(DenseMatrix, RandomRoundTrip) {
  util::Rng rng(321);
  const int n = 40;
  DenseMatrix<double> m(n);
  std::vector<std::vector<double>> a(n, std::vector<double>(n));
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-2, 2);
    for (int j = 0; j < n; ++j) {
      a[i][j] = rng.uniform(-1, 1);
      m.add(i, j, a[i][j]);
    }
    m.add(i, i, 4.0);  // diagonally dominant-ish for conditioning
    a[i][i] += 4.0;
  }
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a[i][j] * x_true[j];
  }
  m.factor_and_solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

TEST(DenseMatrix, ComplexSolve) {
  using C = std::complex<double>;
  DenseMatrix<C> m(2);
  m.add(0, 0, C(1, 1));
  m.add(0, 1, C(0, -1));
  m.add(1, 0, C(2, 0));
  m.add(1, 1, C(1, 0));
  // Pick x = (1+i, 2), compute b = A x.
  const C x0(1, 1), x1(2, 0);
  std::vector<C> b = {C(1, 1) * x0 + C(0, -1) * x1, C(2, 0) * x0 + x1};
  m.factor_and_solve(b);
  EXPECT_NEAR(std::abs(b[0] - x0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(b[1] - x1), 0.0, 1e-12);
}

TEST(DenseMatrix, ClearResets) {
  DenseMatrix<double> m(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.clear();
  m.add(0, 0, 3.0);
  m.add(1, 1, 2.0);
  std::vector<double> b = {6.0, 4.0};
  m.factor_and_solve(b);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace sscl::spice
