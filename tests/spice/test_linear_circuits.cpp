#include <gtest/gtest.h>

#include "spice/circuit.hpp"
#include "spice/dcsweep.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"

namespace sscl::spice {
namespace {

TEST(DcOp, VoltageDivider) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Resistor>("R2", out, kGround, 3e3);

  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(in), 1.0, 1e-9);
  EXPECT_NEAR(op.v(out), 0.75, 1e-6);
}

TEST(DcOp, VoltageSourceBranchCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  auto* v1 = c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(2.0));
  c.add<Resistor>("R1", in, kGround, 1e3);
  Engine engine(c);
  const Solution op = engine.solve_op();
  // 2 mA flows out of the source's positive terminal, so the branch
  // current (pos->neg internal) is -2 mA.
  EXPECT_NEAR(op.branch_current(v1->branch()), -2e-3, 1e-9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  // 1 uA flowing from ground into n1 (SPICE convention: I pos->neg
  // internally, so connect pos=gnd, neg=n1 to push current into n1).
  c.add<CurrentSource>("I1", kGround, n1, SourceSpec::dc(1e-6));
  c.add<Resistor>("R1", n1, kGround, 1e6);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(n1), 1.0, 1e-6);
}

TEST(DcOp, VcvsGain) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(0.1));
  c.add<Vcvs>("E1", out, kGround, in, kGround, 10.0);
  c.add<Resistor>("RL", out, kGround, 1e3);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(out), 1.0, 1e-9);
}

TEST(DcOp, VccsTransconductance) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(0.5));
  // i = gm * vin flowing out -> gnd through the element; with pos=out the
  // current is pulled out of 'out', so the load sees -gm*vin*R.
  c.add<Vccs>("G1", out, kGround, in, kGround, 1e-3);
  c.add<Resistor>("RL", out, kGround, 2e3);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(out), -1.0, 1e-9);
}

TEST(DcOp, CccsMirrorsCurrent) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto* vs = c.add<VoltageSource>("Vs", a, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", a, kGround, 1e3);  // 1 mA through Vs
  c.add<Cccs>("F1", b, kGround, vs, 2.0);
  c.add<Resistor>("R2", b, kGround, 1e3);
  Engine engine(c);
  const Solution op = engine.solve_op();
  // Branch current of Vs is -1 mA; F pushes gain*i out of node b.
  EXPECT_NEAR(op.v(b), 2.0, 1e-6);
}

TEST(DcOp, CcvsTransresistance) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto* vs = c.add<VoltageSource>("Vs", a, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", a, kGround, 1e3);
  c.add<Ccvs>("H1", b, kGround, vs, 4e3);
  c.add<Resistor>("R2", b, kGround, 1e3);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(b), -4.0, 1e-6);
}

TEST(DcOp, SoftOpampFollower) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(0.6));
  // Unity feedback: high-gain opamp forces out == in.
  c.add<SoftOpamp>("X1", out, in, out, 1e5, 0.0, 1.8);
  c.add<Resistor>("RL", out, kGround, 1e6);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(out), 0.6, 1e-3);
}

TEST(DcOp, SoftOpampClampsAtRails) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, kGround, SourceSpec::dc(5.0));
  c.add<SoftOpamp>("X1", out, in, kGround, 1e4, 0.0, 1.8);
  c.add<Resistor>("RL", out, kGround, 1e6);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_GT(op.v(out), 1.75);
  EXPECT_LE(op.v(out), 1.8 + 1e-9);
}

TEST(DcOp, FloatingNodeHandledByGmin) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("V1", a, kGround, SourceSpec::dc(1.0));
  c.add<Resistor>("R1", a, b, 1e3);
  // Node b has no DC path except through R1 and gmin to ground: it should
  // settle at ~1 V without a singular matrix.
  c.add<Capacitor>("C1", b, kGround, 1e-12);
  Engine engine(c);
  const Solution op = engine.solve_op();
  EXPECT_NEAR(op.v(b), 1.0, 1e-3);
}

TEST(DcSweep, ResistorLadderSweep) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  auto* v1 = c.add<VoltageSource>("V1", in, kGround, SourceSpec::dc(0.0));
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Resistor>("R2", mid, kGround, 1e3);
  Engine engine(c);
  const auto values = std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0};
  const DcSweepResult sweep = run_dc_sweep(
      engine, values, [&](double v) { v1->set_spec(SourceSpec::dc(v)); });
  ASSERT_EQ(sweep.solutions.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(sweep.solutions[i].v(mid), values[i] / 2, 1e-9);
  }
  const auto mids = sweep.voltage(mid);
  EXPECT_NEAR(mids.back(), 1.0, 1e-9);
}

TEST(Circuit, NodeNamesAndGround) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("GND"), kGround);
  const NodeId a = c.node("A");
  EXPECT_EQ(c.node("a"), a);  // case-insensitive
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_EQ(c.node_name(kGround), "0");
  EXPECT_FALSE(c.find_node("nope").has_value());
  const NodeId internal = c.internal_node("x");
  EXPECT_NE(internal, a);
}

TEST(Circuit, FindDevice) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), kGround, 1.0e3);
  EXPECT_NE(c.find_device("R1"), nullptr);
  EXPECT_EQ(c.find_device("R2"), nullptr);
}

TEST(Circuit, RejectsInvalidElements) {
  Circuit c;
  EXPECT_THROW(Resistor("R", c.node("a"), kGround, -5.0),
               std::invalid_argument);
  EXPECT_THROW(Capacitor("C", c.node("a"), kGround, -1e-12),
               std::invalid_argument);
  EXPECT_THROW(Inductor("L", c.node("a"), kGround, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sscl::spice
