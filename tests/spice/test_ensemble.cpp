#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "device/mosfet.hpp"
#include "spice/elements.hpp"
#include "spice/engine.hpp"
#include "spice/ensemble.hpp"
#include "util/rng.hpp"

namespace sscl::spice {
namespace {

using device::MosGeometry;
using device::Mosfet;
using device::Process;

const Process kProc = Process::c180();

/// Subthreshold NMOS current mirror driving a resistive load: three
/// nodes, two channel devices whose mismatch moves the output voltage,
/// plus static elements covered by the block baseline.
struct MirrorNodes {
  NodeId g = kGround;
  NodeId d2 = kGround;
  NodeId vdd = kGround;
};

Topology::Builder mirror_builder(double as = 0.0, double ad = 0.0) {
  return [as, ad]() {
    auto c = std::make_unique<Circuit>();
    const NodeId g = c->node("g");
    const NodeId d2 = c->node("d2");
    const NodeId vdd = c->node("vdd");
    c->add<VoltageSource>("Vdd", vdd, kGround, SourceSpec::dc(1.2));
    c->add<CurrentSource>("Iref", vdd, g, SourceSpec::dc(1e-9));
    const MosGeometry geo{2e-6, 1e-6, as, ad};
    c->add<Mosfet>("M1", g, g, kGround, kGround, kProc.nmos, geo);
    c->add<Mosfet>("M2", d2, g, kGround, kGround, kProc.nmos, geo);
    c->add<Resistor>("RL", vdd, d2, 2e8);
    return c;
  };
}

MirrorNodes mirror_nodes(const Circuit& c) {
  MirrorNodes n;
  n.g = c.find_node("g").value();
  n.d2 = c.find_node("d2").value();
  n.vdd = c.find_node("vdd").value();
  return n;
}

EnsembleEngine::Measure mirror_measure(const MirrorNodes& n) {
  return [n](std::uint64_t, const Solution& op) {
    return std::vector<double>{op.v(n.g), op.v(n.d2), op.v(n.vdd)};
  };
}

std::vector<std::vector<double>> run_mirror(std::uint64_t samples,
                                            std::uint64_t seed,
                                            EnsembleOptions opts,
                                            EnsembleStats* stats = nullptr) {
  Topology topo(mirror_builder());
  const MirrorNodes n = mirror_nodes(topo.circuit());
  EnsembleEngine engine(topo, opts);
  auto rows = engine.run(samples, seed, mirror_measure(n));
  if (stats) *stats = engine.stats();
  return rows;
}

TEST(Ensemble, TopologyIsBatchableAndNominalOpMatchesEngine) {
  Topology topo(mirror_builder());
  EXPECT_TRUE(topo.batchable());

  auto circuit = topo.make_circuit();
  Engine engine(*circuit);
  const Solution op = engine.solve_op();
  const MirrorNodes n = mirror_nodes(topo.circuit());
  EXPECT_EQ(topo.nominal_op().v(n.g), op.v(n.g));
  EXPECT_EQ(topo.nominal_op().v(n.d2), op.v(n.d2));
  EXPECT_TRUE(topo.master_system().has_symbolic_factorization() ||
              topo.circuit().unknown_count() < 80);
}

/// The batched lockstep path must reproduce the legacy per-sample path
/// within Newton tolerance (they differ only by the absence of the
/// residual line search; both converge to vntol/reltol).
TEST(Ensemble, BatchedMatchesLegacyPerSampleWithinNewtonTolerance) {
  const std::uint64_t samples = 96;  // > one block, non-multiple tail
  EnsembleOptions batched;
  batched.block = 64;
  EnsembleOptions legacy = batched;
  legacy.use_batched = false;

  EnsembleStats bs, ls;
  const auto rb = run_mirror(samples, 7, batched, &bs);
  const auto rl = run_mirror(samples, 7, legacy, &ls);
  ASSERT_EQ(rb.size(), samples);
  ASSERT_EQ(rl.size(), samples);
  EXPECT_EQ(bs.samples, static_cast<long long>(samples));
  EXPECT_EQ(bs.batched_samples + bs.fallback_samples,
            static_cast<long long>(samples));
  EXPECT_GT(bs.batched_samples, 0);
  EXPECT_EQ(ls.fallback_samples, static_cast<long long>(samples));

  double spread = 0.0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    ASSERT_EQ(rb[s].size(), rl[s].size());
    for (std::size_t i = 0; i < rb[s].size(); ++i) {
      EXPECT_NEAR(rb[s][i], rl[s][i], 1e-5) << "sample " << s << " col " << i;
    }
    spread = std::max(spread, std::fabs(rl[s][1] - rl[0][1]));
  }
  // Sanity: the mismatch draws actually moved the output node, so the
  // comparison above is not vacuous.
  EXPECT_GT(spread, 1e-6);
}

/// Bit-identity across job counts, for both engines: blocks have a
/// fixed size and every lane adopts the shared nominal pivot sequence,
/// so the arithmetic never depends on worker assignment.
TEST(Ensemble, ResultsAreBitIdenticalAcrossJobCounts) {
  const std::uint64_t samples = 150;  // odd block tail
  for (const bool use_batched : {true, false}) {
    EnsembleOptions o1;
    o1.use_batched = use_batched;
    o1.block = 32;
    o1.jobs = 1;
    EnsembleOptions o8 = o1;
    o8.jobs = 8;
    const auto r1 = run_mirror(samples, 11, o1);
    const auto r8 = run_mirror(samples, 11, o8);
    ASSERT_EQ(r1.size(), r8.size());
    for (std::uint64_t s = 0; s < samples; ++s) {
      ASSERT_EQ(r1[s].size(), r8[s].size());
      for (std::size_t i = 0; i < r1[s].size(); ++i) {
        EXPECT_EQ(r1[s][i], r8[s][i])
            << "use_batched=" << use_batched << " sample " << s;
      }
    }
  }
}

/// The legacy path inside the ensemble must equal a hand-rolled
/// per-sample solve using the documented mismatch contract:
/// Rng(seed).fork(s), ordinals advancing over perturbed devices in
/// circuit order.
TEST(Ensemble, LegacyPathFollowsDocumentedMismatchContract) {
  const std::uint64_t seed = 23;
  Topology topo(mirror_builder());
  const MirrorNodes n = mirror_nodes(topo.circuit());
  EnsembleOptions legacy;
  legacy.use_batched = false;
  EnsembleEngine engine(topo, legacy);
  const auto rows = engine.run(5, seed, mirror_measure(n));

  for (std::uint64_t s = 0; s < 5; ++s) {
    auto circuit = mirror_builder()();
    const util::Rng stream = util::Rng(seed).fork(s);
    std::uint64_t ordinal = 0;
    for (const auto& device : circuit->devices()) {
      if (device->perturb_sample(stream, ordinal)) ++ordinal;
    }
    EXPECT_EQ(ordinal, 2u);  // exactly the two MOSFETs draw mismatch
    SolverOptions o;
    o.lint = false;
    Engine ref(*circuit, o);
    const Solution op = ref.solve_op();
    EXPECT_EQ(rows[s][0], op.v(n.g)) << s;
    EXPECT_EQ(rows[s][1], op.v(n.d2)) << s;
  }
}

/// A topology with junction-bearing MOSFETs cannot stage its state in
/// lanes: it must report non-batchable and route every sample through
/// the legacy path, still bit-identical across job counts.
TEST(Ensemble, JunctionDevicesForceLegacyFallback) {
  Topology topo(mirror_builder(1e-12, 1e-12));
  EXPECT_FALSE(topo.batchable());
  const MirrorNodes n = mirror_nodes(topo.circuit());

  EnsembleOptions o1;  // use_batched stays true: the topology opts out
  o1.jobs = 1;
  EnsembleOptions o8 = o1;
  o8.jobs = 8;
  EnsembleEngine e1(topo, o1);
  const auto r1 = e1.run(24, 3, mirror_measure(n));
  EXPECT_EQ(e1.stats().fallback_samples, 24);
  EXPECT_EQ(e1.stats().batched_samples, 0);
  EnsembleEngine e8(topo, o8);
  const auto r8 = e8.run(24, 3, mirror_measure(n));
  for (std::size_t s = 0; s < r1.size(); ++s) {
    for (std::size_t i = 0; i < r1[s].size(); ++i) {
      EXPECT_EQ(r1[s][i], r8[s][i]) << s;
    }
  }
}

/// Forced-sparse run: lanes must adopt the master pivot sequence and
/// replay it numerically (numeric refactor, not a fresh pivot search),
/// and stay bit-identical across job counts.
TEST(Ensemble, SparseLanesReplayTheNominalPivotSequence) {
  SolverOptions solver;
  solver.force_sparse = true;
  Topology topo(mirror_builder(), solver);
  ASSERT_TRUE(topo.batchable());
  ASSERT_TRUE(topo.master_system().has_symbolic_factorization());
  const MirrorNodes n = mirror_nodes(topo.circuit());

  EnsembleOptions o1;
  o1.solver = solver;
  o1.jobs = 1;
  o1.block = 16;
  EnsembleOptions o8 = o1;
  o8.jobs = 8;

  EnsembleEngine e1(topo, o1);
  const auto r1 = e1.run(64, 5, mirror_measure(n));
  const EnsembleStats st = e1.stats();
  EXPECT_GT(st.factor_adoptions, 0);
  EXPECT_GT(st.numeric_refactors, 0);
  EXPECT_GT(st.adoption_hit_rate(), 0.9);
  EXPECT_GT(st.soa_batches, 0);
  EXPECT_GT(st.newton_iterations, 0);

  EnsembleEngine e8(topo, o8);
  const auto r8 = e8.run(64, 5, mirror_measure(n));
  for (std::size_t s = 0; s < r1.size(); ++s) {
    for (std::size_t i = 0; i < r1[s].size(); ++i) {
      EXPECT_EQ(r1[s][i], r8[s][i]) << s;
    }
  }

  // And the sparse solutions agree with the default (dense, n < 80)
  // configuration within solver tolerance.
  EnsembleOptions dense;
  dense.block = 16;
  const auto rd = run_mirror(64, 5, dense);
  for (std::size_t s = 0; s < r1.size(); ++s) {
    for (std::size_t i = 0; i < r1[s].size(); ++i) {
      EXPECT_NEAR(r1[s][i], rd[s][i], 1e-5) << s;
    }
  }
}

}  // namespace
}  // namespace sscl::spice
