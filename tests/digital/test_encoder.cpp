#include "digital/encoder.hpp"

#include <gtest/gtest.h>

#include "digital/fmax.hpp"

namespace sscl::digital {
namespace {

stscl::SclModel timing() {
  stscl::SclModel m;
  m.vsw = 0.2;
  m.cl = 12e-15;
  return m;
}

TEST(Encoder, ReferenceEncoding) {
  // Lower half of a segment: coarse count equals the segment.
  EXPECT_EQ(reference_encode(0, 0).code(), 0);
  EXPECT_EQ(reference_encode(2, 5).code(), 2 * 32 + 5);
  // Upper half: the raw count is one high, corrected by the fine MSB.
  EXPECT_EQ(reference_encode(1, 20).code(), 0 * 32 + 20);
  EXPECT_EQ(reference_encode(8, 31).code(), 7 * 32 + 31);
  // Clamping.
  EXPECT_EQ(reference_encode(12, 40).coarse, 7);
  EXPECT_EQ(reference_encode(0, 20).coarse, 0);
  EXPECT_EQ(reference_encode(-1, -5).code(), 0);
}

TEST(Encoder, StimulusHelpers) {
  EXPECT_EQ(thermometer(3, 8), 0b111u);
  EXPECT_EQ(thermometer(9, 8), 0xFFu);
  // Even segment: ones-first.
  EXPECT_EQ(fine_pattern(0, 3), 0b111u);
  EXPECT_EQ(fine_pattern(2, 0), 0u);
  // Odd segment: ones from pos upward.
  EXPECT_EQ(fine_pattern(1, 30), 0b11ULL << 30);
  EXPECT_EQ(fine_pattern(1, 0), 0xFFFFFFFFULL);
  // Raw coarse count is half-segment early.
  EXPECT_EQ(coarse_raw_count(3, 10), 3);
  EXPECT_EQ(coarse_raw_count(3, 20), 4);
  EXPECT_EQ(coarse_raw_count(7, 31), 8);
}

TEST(Encoder, RoundTripStimulusToReference) {
  for (int seg = 0; seg <= 7; ++seg) {
    for (int pos = 0; pos < 32; ++pos) {
      const EncodedValue v = expected_output(seg, pos);
      EXPECT_EQ(v.coarse, seg) << seg << "," << pos;
      EXPECT_EQ(v.fine, pos) << seg << "," << pos;
    }
  }
}

TEST(Encoder, GateCountNearPaper) {
  Netlist nl;
  build_fai_encoder(nl);
  // The paper's encoder used 196 STSCL gates.
  EXPECT_GE(nl.gate_count(), 140);
  EXPECT_LE(nl.gate_count(), 230);
}

TEST(Encoder, PipeliningReducesDepth) {
  Netlist piped;
  build_fai_encoder(piped);
  Netlist flat;
  EncoderOptions opt;
  opt.pipelined = false;
  build_fai_encoder(flat, opt);
  EXPECT_LE(piped.max_combinational_depth(), 2);
  EXPECT_GE(flat.max_combinational_depth(), 5);
}

TEST(Encoder, FunctionalAtSlowClock) {
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  const auto stimuli = default_stimuli(40, 7);
  EXPECT_TRUE(encoder_works_at(nl, io, timing(), 1e-9,
                               50.0 * timing().delay(1e-9), stimuli));
}

TEST(Encoder, FailsAtAbsurdClock) {
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  EXPECT_FALSE(encoder_works_at(nl, io, timing(), 1e-9,
                                0.1 * timing().delay(1e-9),
                                default_stimuli()));
}

TEST(Encoder, ExhaustiveCodesAtSlowClock) {
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  std::vector<std::pair<int, int>> all;
  for (int seg = 0; seg <= 7; ++seg) {
    for (int pos = 0; pos < 32; ++pos) all.emplace_back(seg, pos);
  }
  EXPECT_TRUE(encoder_works_at(nl, io, timing(), 1e-9,
                               20.0 * timing().delay(1e-9), all));
}

TEST(Encoder, BubbleToleranceThroughMajorityFilter) {
  // Inject a single-bubble error into the fine thermometer; the majority
  // rank (Fig. 8 cells) must absorb it.
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(io.clock, false);

  // Segment 2 (even), position 10, with a bubble: bit 7 cleared.
  std::uint64_t fw = fine_pattern(2, 10) & ~(1ULL << 7);
  const std::uint64_t cw = thermometer(coarse_raw_count(2, 10), 8);
  for (int i = 0; i < 8; ++i) sim.set_input(io.coarse_in[i], (cw >> i) & 1);
  for (int i = 0; i < 32; ++i) sim.set_input(io.fine_in[i], (fw >> i) & 1);
  sim.settle();

  const double period = 30.0 * timing().delay(1e-9);
  for (int k = 0; k < 10; ++k) {
    sim.run_until(sim.time() + period / 2);
    sim.set_input(io.clock, true);
    sim.run_until(sim.time() + period / 2);
    sim.set_input(io.clock, false);
  }
  sim.settle();
  const EncodedValue v = read_outputs(sim, io);
  EXPECT_EQ(v.coarse, 2);
  EXPECT_EQ(v.fine, 10);
}

TEST(Encoder, CoarseOffsetToleratedByCorrection) {
  // The raw coarse count off by one in mid-segment must be corrected by
  // the fine-MSB bank selection (the paper's error-correction claim).
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(io.clock, false);

  // Segment 3, position 5 (lower half): nominal raw count is 3, but a
  // comparator with offset reports 4 -- as if the threshold moved by up
  // to half a segment. pos<16 selects bank A which reads count=4 -> the
  // output coarse becomes 4: NOT corrected. The correction guarantee is
  // against threshold placement error at the half-shifted points, so
  // test the guaranteed case: pos >= 16 with raw count not yet
  // incremented (late comparator).
  const int seg = 3, pos = 20;
  const int raw_late = seg;  // comparator late: missed the half-shift
  const std::uint64_t cw = thermometer(raw_late, 8);
  const std::uint64_t fw = fine_pattern(seg, pos);
  for (int i = 0; i < 8; ++i) sim.set_input(io.coarse_in[i], (cw >> i) & 1);
  for (int i = 0; i < 32; ++i) sim.set_input(io.fine_in[i], (fw >> i) & 1);

  const double period = 30.0 * timing().delay(1e-9);
  for (int k = 0; k < 10; ++k) {
    sim.run_until(sim.time() + period / 2);
    sim.set_input(io.clock, true);
    sim.run_until(sim.time() + period / 2);
    sim.set_input(io.clock, false);
  }
  sim.settle();
  const EncodedValue v = read_outputs(sim, io);
  // Bank B (count-1) = 2: one off. The figure of merit: the total code
  // error stays within one fine LSB band of a segment boundary rather
  // than jumping a full 32-code segment.
  EXPECT_NEAR(v.code(), seg * 32 + pos, 33);
}

// fmax scales linearly with the tail current (paper Fig. 9(a)).
class EncoderFmaxTest : public ::testing::TestWithParam<double> {};

TEST_P(EncoderFmaxTest, FmaxProportionalToIss) {
  static Netlist nl;
  static EncoderIo io = build_fai_encoder(nl);
  const double iss = GetParam();
  const double f = measure_encoder_fmax(nl, io, timing(), iss);
  const double td = timing().delay(iss);
  EXPECT_GT(f * td, 0.2);
  EXPECT_LT(f * td, 1.0);
}

INSTANTIATE_TEST_SUITE_P(IssSweep, EncoderFmaxTest,
                         ::testing::Values(1e-11, 1e-9, 1e-7));

TEST(Encoder, FmaxSweepMatchesPointMeasurementsAtAnyJobCount) {
  // The parallel per-Iss binary searches share the netlist read-only;
  // the sweep must equal the serial point calls bit-for-bit.
  Netlist nl;
  EncoderIo io = build_fai_encoder(nl);
  const std::vector<double> iss = {1e-10, 1e-9};
  const std::vector<double> serial =
      measure_encoder_fmax_sweep(nl, io, timing(), iss, 1);
  const std::vector<double> pooled =
      measure_encoder_fmax_sweep(nl, io, timing(), iss, 2);
  ASSERT_EQ(serial.size(), iss.size());
  EXPECT_EQ(serial, pooled);
  for (std::size_t i = 0; i < iss.size(); ++i) {
    EXPECT_EQ(serial[i], measure_encoder_fmax(nl, io, timing(), iss[i])) << i;
  }
}

TEST(Encoder, PipelinedBeatsUnpipelinedFmax) {
  Netlist piped;
  EncoderIo io_p = build_fai_encoder(piped);
  Netlist flat;
  EncoderOptions opt;
  opt.pipelined = false;
  build_fai_encoder(flat, opt);

  const double iss = 1e-9;
  const double f_piped = measure_encoder_fmax(piped, io_p, timing(), iss);
  const double settle_budget =
      flat.max_combinational_depth() * timing().delay(iss);
  const double f_flat_bound = 1.0 / (2.0 * settle_budget);
  EXPECT_GT(f_piped, 1.5 * f_flat_bound);
}

}  // namespace
}  // namespace sscl::digital
