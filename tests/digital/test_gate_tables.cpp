// Exhaustive per-kind coverage of the GateKind lookup tables. Every
// kind in [0, kGateKindCount) is asserted against the paper's cell
// library: stacked NMOS levels (area/headroom), data-input arity and
// latching behaviour. A new enumerator fails here until all three
// tables and this test are extended together.

#include <gtest/gtest.h>

#include <iterator>
#include <stdexcept>
#include <vector>

#include "digital/netlist.hpp"

namespace sscl::digital {
namespace {

struct KindRow {
  GateKind kind;
  const char* name;
  int stack;
  int inputs;
  bool latching;
};

constexpr KindRow kRows[] = {
    {GateKind::kBuf, "buf", 1, 1, false},
    {GateKind::kAnd2, "and2", 2, 2, false},
    {GateKind::kOr2, "or2", 2, 2, false},
    {GateKind::kXor2, "xor2", 2, 2, false},
    {GateKind::kOr4, "or4", 3, 4, false},
    {GateKind::kMux2, "mux2", 2, 3, false},
    {GateKind::kMaj3, "maj3", 3, 3, false},
    {GateKind::kLatch, "latch", 2, 1, true},
    {GateKind::kMaj3Latch, "maj3_latch", 4, 3, true},
    {GateKind::kAnd2Latch, "and2_latch", 3, 2, true},
    {GateKind::kOr2Latch, "or2_latch", 3, 2, true},
    {GateKind::kXor2Latch, "xor2_latch", 3, 2, true},
    {GateKind::kOr4Latch, "or4_latch", 4, 4, true},
    {GateKind::kMux2Latch, "mux2_latch", 3, 3, true},
    {GateKind::kXor3, "xor3", 3, 3, false},
    {GateKind::kXor3Latch, "xor3_latch", 4, 3, true},
};

TEST(GateTables, EveryKindHasARow) {
  ASSERT_EQ(static_cast<int>(std::size(kRows)), kGateKindCount);
  for (int k = 0; k < kGateKindCount; ++k) {
    EXPECT_EQ(static_cast<int>(kRows[k].kind), k)
        << "row order must follow the enum";
  }
}

TEST(GateTables, TablesMatchTheCellLibrary) {
  for (const KindRow& row : kRows) {
    SCOPED_TRACE(row.name);
    EXPECT_EQ(stack_levels(row.kind), row.stack);
    EXPECT_EQ(input_count(row.kind), row.inputs);
    EXPECT_EQ(is_latching(row.kind), row.latching);
  }
}

TEST(GateTables, TableInvariants) {
  for (const KindRow& row : kRows) {
    SCOPED_TRACE(row.name);
    // One tail current drives 1..4 stacked pair levels.
    EXPECT_GE(stack_levels(row.kind), 1);
    EXPECT_LE(stack_levels(row.kind), 4);
    // Arity fits the Gate::in array.
    EXPECT_GE(input_count(row.kind), 1);
    EXPECT_LE(input_count(row.kind), 4);
    // A merged output latch costs exactly one extra stack level over
    // some combinational kind with the same arity — spot-check the
    // paired kinds directly below.
  }
  EXPECT_EQ(stack_levels(GateKind::kAnd2Latch),
            stack_levels(GateKind::kAnd2) + 1);
  EXPECT_EQ(stack_levels(GateKind::kOr2Latch), stack_levels(GateKind::kOr2) + 1);
  EXPECT_EQ(stack_levels(GateKind::kXor2Latch),
            stack_levels(GateKind::kXor2) + 1);
  EXPECT_EQ(stack_levels(GateKind::kOr4Latch), stack_levels(GateKind::kOr4) + 1);
  EXPECT_EQ(stack_levels(GateKind::kMux2Latch),
            stack_levels(GateKind::kMux2) + 1);
  EXPECT_EQ(stack_levels(GateKind::kMaj3Latch),
            stack_levels(GateKind::kMaj3) + 1);
  EXPECT_EQ(stack_levels(GateKind::kXor3Latch),
            stack_levels(GateKind::kXor3) + 1);
  EXPECT_EQ(stack_levels(GateKind::kLatch), stack_levels(GateKind::kBuf) + 1);
}

TEST(GateTables, AddValidatesArityAgainstTheTable) {
  for (const KindRow& row : kRows) {
    SCOPED_TRACE(row.name);
    Netlist nl;
    nl.clock();
    const auto a = nl.input("a");
    std::vector<Ref> ins(input_count(row.kind), Ref(a));
    EXPECT_NO_THROW(nl.add(row.kind, ins, "ok"));
    ins.push_back(Ref(a));
    EXPECT_THROW(nl.add(row.kind, ins, "bad"), std::invalid_argument);
  }
  // Latching kinds refuse to exist before the clock does.
  Netlist nl;
  const auto a = nl.input("a");
  EXPECT_THROW(nl.add(GateKind::kLatch, {Ref(a)}, "l"), std::logic_error);
}

}  // namespace
}  // namespace sscl::digital
