#include "digital/netlist.hpp"

#include <gtest/gtest.h>

namespace sscl::digital {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId y = nl.and2(a, b, "y");
  EXPECT_EQ(nl.gate_count(), 1);
  EXPECT_EQ(nl.signal_count(), 3);
  EXPECT_EQ(nl.driver_of(y), 0);
  EXPECT_EQ(nl.driver_of(a), -1);
  EXPECT_EQ(nl.signal_name(y), "y");
}

TEST(Netlist, RejectsWrongArity) {
  Netlist nl;
  const SignalId a = nl.input("a");
  EXPECT_THROW(nl.add(GateKind::kAnd2, {Ref(a)}, "bad"), std::invalid_argument);
  EXPECT_THROW(nl.add(GateKind::kBuf, {Ref(a), Ref(a)}, "bad2"),
               std::invalid_argument);
}

TEST(Netlist, RejectsBadSignal) {
  Netlist nl;
  EXPECT_THROW(nl.add(GateKind::kBuf, {Ref(42)}, "bad"), std::invalid_argument);
}

TEST(Netlist, LatchRequiresClock) {
  Netlist nl;
  const SignalId a = nl.input("a");
  EXPECT_THROW(nl.latch(a, true, "l"), std::logic_error);
  nl.clock();
  EXPECT_NO_THROW(nl.latch(a, true, "l"));
  EXPECT_EQ(nl.latch_count(), 1);
}

TEST(Netlist, StackLevelsAndInputCounts) {
  EXPECT_EQ(stack_levels(GateKind::kBuf), 1);
  EXPECT_EQ(stack_levels(GateKind::kAnd2), 2);
  EXPECT_EQ(stack_levels(GateKind::kMaj3), 3);
  EXPECT_EQ(stack_levels(GateKind::kMaj3Latch), 4);
  EXPECT_EQ(input_count(GateKind::kOr4), 4);
  EXPECT_EQ(input_count(GateKind::kMux2), 3);
  EXPECT_TRUE(is_latching(GateKind::kXor2Latch));
  EXPECT_FALSE(is_latching(GateKind::kXor2));
}

TEST(Netlist, CombinationalDepth) {
  Netlist nl;
  nl.clock();
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId x = nl.and2(a, b, "x");
  const SignalId y = nl.or2(x, b, "y");
  const SignalId z = nl.xor2(y, a, "z");
  EXPECT_EQ(nl.max_combinational_depth(), 3);
  // A latch resets the depth count.
  const SignalId l = nl.latch(z, true, "l");
  nl.and2(l, a, "w");
  EXPECT_EQ(nl.max_combinational_depth(), 4);  // a->x->y->z->latch cone
}

TEST(Netlist, StaticPowerBudget) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "b1");
  nl.buf(a, "b2");
  EXPECT_DOUBLE_EQ(nl.static_current(1e-9), 2e-9);
  EXPECT_DOUBLE_EQ(nl.static_power(1e-9, 1.0), 2e-9);
}

TEST(Netlist, AreaGrowsWithGates) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "b1");
  const double a1 = nl.area_estimate();
  nl.maj3(a, a, a, "m");
  EXPECT_GT(nl.area_estimate(), a1);
}

TEST(Netlist, RefInversion) {
  Ref r(3);
  EXPECT_FALSE(r.neg);
  Ref inv = ~r;
  EXPECT_TRUE(inv.neg);
  EXPECT_EQ(inv.sig, 3);
  EXPECT_FALSE((~inv).neg);
}

}  // namespace
}  // namespace sscl::digital
