#include "digital/vcd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace sscl::digital {
namespace {

stscl::SclModel timing() {
  stscl::SclModel m;
  m.vsw = 0.2;
  m.cl = 12e-15;
  return m;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Vcd, HeaderAndChanges) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.buf(a, "y");
  (void)y;

  const std::string path = testing::TempDir() + "sscl_test.vcd";
  EventSim sim(nl, timing(), 1e-9);
  sim.settle();
  {
    VcdWriter vcd(path, nl);
    vcd.sample(sim);
    sim.set_input(a, true);
    sim.settle();
    vcd.sample(sim);
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find(" a $end"), std::string::npos);
  EXPECT_NE(text.find(" y $end"), std::string::npos);
  // Initial zeros then ones after the toggle.
  EXPECT_NE(text.find("0!"), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, OnlyChangesEmitted) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "y");
  const std::string path = testing::TempDir() + "sscl_test2.vcd";
  EventSim sim(nl, timing(), 1e-9);
  sim.settle();
  {
    VcdWriter vcd(path, nl, std::vector<SignalId>{a});
    vcd.sample(sim);
    vcd.sample(sim);  // no change: no new time block
    vcd.sample(sim);
  }
  const std::string text = slurp(path);
  // Exactly one '#' time marker (the initial dump).
  EXPECT_EQ(std::count(text.begin(), text.end(), '#'), 1);
  std::remove(path.c_str());
}

TEST(Vcd, ManySignalsGetUniqueIds) {
  Netlist nl;
  const SignalId a = nl.input("a");
  for (int i = 0; i < 200; ++i) nl.buf(a, "b" + std::to_string(i));
  const std::string path = testing::TempDir() + "sscl_test3.vcd";
  {
    EventSim sim(nl, timing(), 1e-9);
    VcdWriter vcd(path, nl);
    vcd.sample(sim);
  }
  const std::string text = slurp(path);
  // 201 signals -> 201 unique $var identifiers (two-char ids past 94).
  std::set<std::string> ids;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("$var wire 1 ", 0) == 0) {
      const auto rest = line.substr(12);
      ids.insert(rest.substr(0, rest.find(' ')));
    }
  }
  EXPECT_EQ(ids.size(), 201u);
  std::remove(path.c_str());
}

TEST(Vcd, RejectsBadUsage) {
  Netlist nl;
  nl.input("a");
  EXPECT_THROW(VcdWriter("/no_such_dir_xyz/x.vcd", nl), std::runtime_error);
  EXPECT_THROW(VcdWriter(testing::TempDir() + "t.vcd", nl, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sscl::digital
