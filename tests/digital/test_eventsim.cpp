#include "digital/eventsim.hpp"

#include <gtest/gtest.h>

namespace sscl::digital {
namespace {

stscl::SclModel timing() {
  stscl::SclModel m;
  m.vsw = 0.2;
  m.cl = 10e-15;
  return m;
}

TEST(EventSim, CombinationalGatesEvaluate) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId y_and = nl.and2(a, b, "and");
  const SignalId y_or = nl.or2(a, b, "or");
  const SignalId y_xor = nl.xor2(a, b, "xor");
  const SignalId y_inv = nl.buf(~Ref(a), "inv");

  EventSim sim(nl, timing(), 1e-9);
  for (int row = 0; row < 4; ++row) {
    sim.set_input(a, row & 1);
    sim.set_input(b, row & 2);
    sim.settle();
    EXPECT_EQ(sim.value(y_and), (row & 1) && (row & 2));
    EXPECT_EQ(sim.value(y_or), (row & 1) || (row & 2));
    EXPECT_EQ(sim.value(y_xor), ((row & 1) != 0) != ((row & 2) != 0));
    EXPECT_EQ(sim.value(y_inv), !(row & 1));
  }
}

TEST(EventSim, Maj3AndMux) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId c = nl.input("c");
  const SignalId m = nl.maj3(a, b, c, "maj");
  const SignalId x = nl.mux2(a, b, c, "mux");
  EventSim sim(nl, timing(), 1e-9);
  for (int row = 0; row < 8; ++row) {
    const bool va = row & 1, vb = row & 2, vc = row & 4;
    sim.set_input(a, va);
    sim.set_input(b, vb);
    sim.set_input(c, vc);
    sim.settle();
    EXPECT_EQ(sim.value(m), (va && vb) || (vb && vc) || (va && vc));
    EXPECT_EQ(sim.value(x), va ? vb : vc);
  }
}

TEST(EventSim, GateDelayMatchesModel) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.buf(a, "y");
  const double iss = 1e-9;
  EventSim sim(nl, timing(), iss);
  sim.settle();
  const double td = timing().delay(iss);
  EXPECT_DOUBLE_EQ(sim.gate_delay(), td);
  sim.set_input(a, true);
  sim.run_until(sim.time() + 0.99 * td);
  EXPECT_FALSE(sim.value(y));  // not yet propagated
  sim.run_until(sim.time() + 0.02 * td);
  EXPECT_TRUE(sim.value(y));
}

TEST(EventSim, InertialGlitchSuppression) {
  // A pulse shorter than the gate delay must not reach the output.
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.buf(a, "y");
  EventSim sim(nl, timing(), 1e-9);
  sim.settle();
  const double td = sim.gate_delay();
  sim.set_input(a, true);
  sim.run_until(sim.time() + 0.3 * td);
  sim.set_input(a, false);  // pulse 0.3 td wide
  sim.settle();
  EXPECT_FALSE(sim.value(y));
  // Transition count: y never toggled.
  EXPECT_EQ(sim.value(y), false);
}

TEST(EventSim, LatchTransparencyAndHold) {
  Netlist nl;
  const SignalId clk = nl.clock();
  const SignalId d = nl.input("d");
  const SignalId q = nl.latch(d, true, "q");
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(clk, true);  // transparent
  sim.set_input(d, true);
  sim.settle();
  EXPECT_TRUE(sim.value(q));
  sim.set_input(clk, false);  // hold
  sim.settle();
  sim.set_input(d, false);
  sim.settle();
  EXPECT_TRUE(sim.value(q));  // held
  sim.set_input(clk, true);
  sim.settle();
  EXPECT_FALSE(sim.value(q));  // follows again
}

TEST(EventSim, LatchPhasePolarity) {
  Netlist nl;
  const SignalId clk = nl.clock();
  const SignalId d = nl.input("d");
  const SignalId q0 = nl.latch(d, false, "q0");  // transparent when clk=0
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(clk, false);
  sim.set_input(d, true);
  sim.settle();
  EXPECT_TRUE(sim.value(q0));
  sim.set_input(clk, true);
  sim.settle();
  sim.set_input(d, false);
  sim.settle();
  EXPECT_TRUE(sim.value(q0));  // holding while clk=1
}

TEST(EventSim, SetIssRescalesDelay) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "y");
  EventSim sim(nl, timing(), 1e-9);
  const double d1 = sim.gate_delay();
  sim.set_iss(1e-8);
  EXPECT_NEAR(sim.gate_delay(), d1 / 10.0, d1 * 1e-9);
}

TEST(EventSim, PerKindDelayFactors) {
  Netlist nl;
  nl.clock();
  const SignalId a = nl.input("a");
  const SignalId b = nl.input("b");
  const SignalId c = nl.input("c");
  const SignalId y_buf = nl.buf(a, "yb");
  const SignalId y_maj = nl.maj3(a, b, c, "ym");
  EventSim sim(nl, timing(), 1e-9);
  sim.set_kind_factor(GateKind::kMaj3, 1.5);
  sim.set_input(b, true);  // maj(a,1,0) = a
  sim.settle();
  const double td = sim.gate_delay();
  sim.set_input(a, true);
  sim.run_until(sim.time() + 1.2 * td);
  EXPECT_TRUE(sim.value(y_buf));   // buffer already switched
  EXPECT_FALSE(sim.value(y_maj));  // compound gate still in flight
  sim.run_until(sim.time() + 0.5 * td);
  EXPECT_TRUE(sim.value(y_maj));
  EXPECT_DOUBLE_EQ(sim.kind_factor(GateKind::kMaj3), 1.5);
  EXPECT_DOUBLE_EQ(sim.kind_factor(GateKind::kBuf), 1.0);
}

TEST(EventSim, RejectsDrivingGateOutput) {
  Netlist nl;
  const SignalId a = nl.input("a");
  const SignalId y = nl.buf(a, "y");
  EventSim sim(nl, timing(), 1e-9);
  EXPECT_THROW(sim.set_input(y, true), std::invalid_argument);
}

TEST(EventSim, TransitionCounting) {
  Netlist nl;
  const SignalId a = nl.input("a");
  nl.buf(a, "y");
  EventSim sim(nl, timing(), 1e-9);
  sim.settle();
  const long long before = sim.transition_count();
  sim.set_input(a, true);
  sim.settle();
  sim.set_input(a, false);
  sim.settle();
  // 2 input toggles + 2 output toggles.
  EXPECT_EQ(sim.transition_count() - before, 4);
}

}  // namespace
}  // namespace sscl::digital
