// EventSim and sta share one fanout-aware delay model: every gate runs
// at model.delay(iss, fanout of its output), not at the calibration
// load. This pins the contract the static analyzer depends on.

#include <gtest/gtest.h>

#include "digital/eventsim.hpp"
#include "digital/netlist.hpp"
#include "stscl/scl_params.hpp"

namespace sscl::digital {
namespace {

TEST(EventSimFanout, PerGateDelayTracksOutputFanout) {
  Netlist nl;
  const auto a = nl.input("a");
  const auto x = nl.buf(a, "x");  // fanout 3 below
  const auto y = nl.buf(x, "y");  // fanout 1
  nl.and2(x, x, "z");             // fanout 0 (sink)
  nl.buf(y, "w");                 // fanout 0 (sink)

  const stscl::SclModel m;
  const double iss = 1e-9;
  EventSim sim(nl, m, iss);

  EXPECT_EQ(nl.fanout_of(x), 3);
  EXPECT_DOUBLE_EQ(sim.gate_delay(nl.driver_of(x)), m.delay(iss, 3));
  EXPECT_DOUBLE_EQ(sim.gate_delay(nl.driver_of(y)), m.delay(iss, 1));
  // Unloaded outputs clamp to the calibration (fanout-1) load.
  EXPECT_DOUBLE_EQ(sim.gate_delay(), m.delay(iss));
  const double d3 = sim.gate_delay(nl.driver_of(x));
  EXPECT_NEAR(d3 / sim.gate_delay(), (m.cl + 2 * m.cin) / m.cl, 1e-12);
}

TEST(EventSimFanout, SetIssRescalesEveryGate) {
  Netlist nl;
  const auto a = nl.input("a");
  const auto x = nl.buf(a, "x");
  nl.and2(x, x, "z");

  const stscl::SclModel m;
  EventSim sim(nl, m, 1e-9);
  const double before = sim.gate_delay(nl.driver_of(x));
  sim.set_iss(1e-8);  // delay ~ 1/Iss
  EXPECT_NEAR(sim.gate_delay(nl.driver_of(x)) / before, 0.1, 1e-12);
}

}  // namespace
}  // namespace sscl::digital
