#include "digital/adder.hpp"

#include <gtest/gtest.h>

#include "digital/eventsim.hpp"
#include "util/rng.hpp"

namespace sscl::digital {
namespace {

stscl::SclModel timing() {
  stscl::SclModel m;
  m.vsw = 0.2;
  m.cl = 12e-15;
  return m;
}

/// Drive the pipelined adder with a stream of operand pairs (one per
/// cycle) and return the stream of results sampled at rising edges.
std::vector<std::uint64_t> run_adder(
    const Netlist& nl, const AdderIo& io, int bits, double period, double iss,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& ops) {
  EventSim sim(nl, timing(), iss);
  sim.set_input(nl.clock_signal(), false);
  sim.set_input(io.cin, false);
  auto apply = [&](std::uint64_t a, std::uint64_t b) {
    for (int i = 0; i < bits; ++i) {
      sim.set_input(io.a[i], (a >> i) & 1);
      sim.set_input(io.b[i], (b >> i) & 1);
    }
  };
  apply(ops[0].first, ops[0].second);
  sim.settle();

  std::vector<std::uint64_t> sampled;
  const int extra = io.latency_cycles + 12;
  const double t0 = sim.time();
  for (int k = 0; k < static_cast<int>(ops.size()) + extra; ++k) {
    const double t_rise = t0 + k * period;
    sim.run_until(t_rise);
    std::uint64_t s = 0;
    for (int i = 0; i < bits; ++i) {
      s |= static_cast<std::uint64_t>(sim.value(io.sum[i])) << i;
    }
    s |= static_cast<std::uint64_t>(sim.value(io.cout)) << bits;
    sampled.push_back(s);
    sim.set_input(nl.clock_signal(), true);
    if (k + 1 < static_cast<int>(ops.size())) {
      sim.run_until(t_rise + 0.05 * period);
      apply(ops[k + 1].first, ops[k + 1].second);
    }
    sim.run_until(t_rise + 0.5 * period);
    sim.set_input(nl.clock_signal(), false);
  }
  return sampled;
}

/// Latency-tolerant check: find a shift matching all expected results.
bool stream_matches(
    const std::vector<std::uint64_t>& sampled,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& ops,
    std::uint64_t mask, int max_latency) {
  for (int lat = 1; lat <= max_latency; ++lat) {
    bool ok = true;
    for (std::size_t k = 0; k < ops.size(); ++k) {
      const std::uint64_t expect = (ops[k].first + ops[k].second) & mask;
      if (k + lat >= sampled.size() || sampled[k + lat] != expect) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

TEST(Adder, CombinationalExhaustive4Bit) {
  Netlist nl;
  AdderOptions opt;
  opt.pipelined = false;
  AdderIo io = build_pipelined_adder(nl, 4, opt);
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(io.cin, false);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int i = 0; i < 4; ++i) {
        sim.set_input(io.a[i], (a >> i) & 1);
        sim.set_input(io.b[i], (b >> i) & 1);
      }
      sim.settle();
      int s = 0;
      for (int i = 0; i < 4; ++i) s |= sim.value(io.sum[i]) << i;
      s |= sim.value(io.cout) << 4;
      EXPECT_EQ(s, a + b) << a << "+" << b;
    }
  }
}

TEST(Adder, CombinationalCarryIn) {
  Netlist nl;
  AdderOptions opt;
  opt.pipelined = false;
  AdderIo io = build_pipelined_adder(nl, 4, opt);
  EventSim sim(nl, timing(), 1e-9);
  sim.set_input(io.cin, true);
  for (int i = 0; i < 4; ++i) {
    sim.set_input(io.a[i], (11 >> i) & 1);
    sim.set_input(io.b[i], (6 >> i) & 1);
  }
  sim.settle();
  int s = 0;
  for (int i = 0; i < 4; ++i) s |= sim.value(io.sum[i]) << i;
  s |= sim.value(io.cout) << 4;
  EXPECT_EQ(s, 11 + 6 + 1);
}

TEST(Adder, Pipelined8BitStream) {
  Netlist nl;
  AdderIo io = build_pipelined_adder(nl, 8);
  util::Rng rng(5);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  ops.emplace_back(0, 0);
  ops.emplace_back(255, 255);
  ops.emplace_back(170, 85);
  ops.emplace_back(1, 255);
  for (int k = 0; k < 24; ++k) {
    ops.emplace_back(rng.bounded(256), rng.bounded(256));
  }
  const double period = 10 * timing().delay(1e-9);
  const auto sampled = run_adder(nl, io, 8, period, 1e-9, ops);
  EXPECT_TRUE(stream_matches(sampled, ops, 0x1FF, io.latency_cycles + 4));
}

TEST(Adder, Pipelined32BitStream) {
  // The [13] design point: a 32-bit pipelined STSCL adder.
  Netlist nl;
  AdderIo io = build_pipelined_adder(nl, 32);
  util::Rng rng(9);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  ops.emplace_back(0xFFFFFFFFULL, 1);  // full carry ripple
  for (int k = 0; k < 12; ++k) {
    ops.emplace_back(rng.next_u64() & 0xFFFFFFFFULL,
                     rng.next_u64() & 0xFFFFFFFFULL);
  }
  const double period = 10 * timing().delay(1e-9);
  const auto sampled = run_adder(nl, io, 32, period, 1e-9, ops);
  EXPECT_TRUE(stream_matches(sampled, ops, 0x1FFFFFFFFULL,
                             io.latency_cycles + 10));
}

TEST(Adder, PipelinedDepthIsConstant) {
  Netlist n8, n32;
  build_pipelined_adder(n8, 8);
  build_pipelined_adder(n32, 32);
  // Depth (and hence fmax) does not grow with width: that is the whole
  // point of bit-level pipelining.
  EXPECT_LE(n8.max_combinational_depth(), 2);
  EXPECT_LE(n32.max_combinational_depth(), 2);
  Netlist flat;
  AdderOptions opt;
  opt.pipelined = false;
  build_pipelined_adder(flat, 32, opt);
  EXPECT_GE(flat.max_combinational_depth(), 32);
}

TEST(Adder, PdpPerStageNearPaper13) {
  // [13] reports 5 fJ/stage PDP; the analytic model lands in that range
  // for the fitted CL.
  const double pdp = adder_pdp_per_stage(timing(), 1e-9, 1.0);
  EXPECT_GT(pdp, 2e-15);
  EXPECT_LT(pdp, 15e-15);
  // Bias-independent: PDP is an energy, delay*current cancels Iss.
  EXPECT_NEAR(adder_pdp_per_stage(timing(), 1e-11, 1.0), pdp, pdp * 1e-9);
}

}  // namespace
}  // namespace sscl::digital
